//! # spf-util
//!
//! Shared low-level utilities for the `spf` workspace, the reproduction of
//! Graefe & Kuno, *"Definition, Detection, and Recovery of Single-Page
//! Failures"* (VLDB 2012).
//!
//! This crate deliberately has no dependencies. It provides:
//!
//! * [`crc`] — a software, table-driven CRC-32C (Castagnoli) used as the
//!   in-page checksum that drives single-page failure *detection*;
//! * [`codec`] — little-endian binary encoding helpers used by the page
//!   format and the log record format (the workspace hand-rolls its
//!   serialization, as a storage engine would);
//! * [`sim`] — a deterministic simulated clock and I/O cost model used to
//!   reproduce the paper's Section 6 performance arithmetic (e.g. "restoring
//!   a backup with 100 GB of data at 100 MB/s requires 1,000 s") without
//!   real hardware;
//! * [`hex`] — tiny hex-dump helpers used by diagnostics and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod hex;
pub mod sim;

pub use codec::{Decoder, Encoder};
pub use crc::{crc32c, crc32c_bytewise, Crc32c};
pub use sim::{IoCostModel, IoKind, SimClock, SimDuration};
