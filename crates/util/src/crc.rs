//! Software CRC-32C (Castagnoli polynomial, reflected), slicing-by-8.
//!
//! Every database page in this workspace carries a CRC-32C over its payload
//! (see `spf-storage`). A checksum mismatch on read is the canonical
//! *in-page* test of the paper's Section 4.2 ("Many single-page failures may
//! be discovered by in-page tests, e.g., parity and checksum calculations").
//! The checksum therefore runs on every verified device read and on every
//! write-back of a page, so its throughput sits squarely on the buffer
//! pool's hot path.
//!
//! The implementation is **slicing-by-8**: eight 256-entry tables computed
//! at compile time let the inner loop consume eight bytes per iteration
//! with eight independent table lookups, instead of the classic
//! byte-at-a-time loop's one lookup per byte with a serial dependency
//! between all of them. The bytewise variant is retained (as
//! [`crc32c_bytewise`]) as the reference oracle for tests and benchmarks.
//! CRC-32C was chosen over CRC-32 (IEEE) because it is what production
//! engines use for page checksums (e.g. PostgreSQL data checksums, RocksDB
//! block checksums) and it detects all single-bit and all two-bit errors
//! within a page-sized payload.

/// Reflected CRC-32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Slicing tables. `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[k][b]` is the CRC contribution of byte `b` followed by `k`
/// zero bytes, so one iteration can fold eight input bytes at once.
///
/// `const fn` construction keeps all eight tables (8 KiB) in rodata; no
/// runtime init cost.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Computes the CRC-32C of `data` in one shot.
///
/// ```
/// // Known-answer test vector from RFC 3720 (iSCSI): CRC-32C("123456789").
/// assert_eq!(spf_util::crc32c(b"123456789"), 0xE306_9283);
/// ```
#[must_use]
pub fn crc32c(data: &[u8]) -> u32 {
    let mut hasher = Crc32c::new();
    hasher.update(data);
    hasher.finalize()
}

/// Reference byte-at-a-time CRC-32C. Bit-identical to [`crc32c`]; kept as
/// the oracle the slicing-by-8 path is tested and benchmarked against.
#[must_use]
pub fn crc32c_bytewise(data: &[u8]) -> u32 {
    !update_bytewise(!0, data)
}

fn update_bytewise(mut crc: u32, data: &[u8]) -> u32 {
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLES[0][idx];
    }
    crc
}

/// Incremental CRC-32C hasher for multi-fragment payloads.
///
/// Used by the log manager to checksum a record header and body without
/// copying them into one buffer first.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Creates a hasher in the initial state.
    #[must_use]
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feeds `data` into the checksum, eight bytes per iteration.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            // Fold the running CRC into the first four bytes, then look up
            // all eight bytes in independent tables: no serial dependency
            // between lookups, unlike the bytewise loop.
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        self.state = update_bytewise(crc, chunks.remainder());
    }

    /// Consumes the hasher and returns the final checksum.
    #[must_use]
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_rfc3720() {
        // RFC 3720 B.4 test vector.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c_bytewise(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn all_zero_block() {
        // RFC 3720: 32 bytes of zeros -> 0x8A9136AA.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn all_ones_block() {
        // RFC 3720: 32 bytes of 0xFF -> 0x62A8AB43.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn ascending_block() {
        // RFC 3720: bytes 0x00..0x1F -> 0x46DD794E.
        let data: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&data), 0x46DD_794E);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(8192).collect();
        let mut hasher = Crc32c::new();
        for chunk in data.chunks(97) {
            hasher.update(chunk);
        }
        assert_eq!(hasher.finalize(), crc32c(&data));
    }

    /// Slicing-by-8 must agree with the bytewise oracle on every length
    /// 0..=64 (covering all chunk/remainder splits) and on a few thousand
    /// random lengths and alignments.
    #[test]
    fn slice8_matches_bytewise_fuzz() {
        // Deterministic xorshift64* so failures reproduce.
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let pool: Vec<u8> = (0..16384).map(|_| (next() >> 56) as u8).collect();

        for len in 0..=64usize {
            for offset in 0..8usize {
                let slice = &pool[offset..offset + len];
                assert_eq!(
                    crc32c(slice),
                    crc32c_bytewise(slice),
                    "len {len} offset {offset}"
                );
            }
        }
        for _ in 0..4000 {
            let len = (next() as usize) % 4096;
            let offset = (next() as usize) % (pool.len() - len);
            let slice = &pool[offset..offset + len];
            assert_eq!(
                crc32c(slice),
                crc32c_bytewise(slice),
                "len {len} offset {offset}"
            );
        }
        // Incremental updates across odd split points must also agree.
        for _ in 0..200 {
            let len = (next() as usize) % 4096;
            let offset = (next() as usize) % (pool.len() - len);
            let slice = &pool[offset..offset + len];
            let mut hasher = Crc32c::new();
            let mut pos = 0;
            while pos < slice.len() {
                let step = 1 + (next() as usize) % 101;
                let end = (pos + step).min(slice.len());
                hasher.update(&slice[pos..end]);
                pos = end;
            }
            assert_eq!(hasher.finalize(), crc32c_bytewise(slice));
        }
    }

    #[test]
    fn detects_single_bit_flip_in_page_sized_payload() {
        let mut data = vec![0xA5u8; 8192];
        let clean = crc32c(&data);
        for bit in [0usize, 1, 7, 8, 63, 8191 * 8, 8191 * 8 + 7] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&data), clean, "bit {bit} flip went undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32c(&data), clean);
    }

    #[test]
    fn detects_swapped_halves() {
        // A lost write that presents another valid-looking sector must not
        // collide. Swapping two distinct halves changes the checksum.
        let mut data = Vec::new();
        data.extend(std::iter::repeat_n(0x11u8, 4096));
        data.extend(std::iter::repeat_n(0x22u8, 4096));
        let mut swapped = Vec::new();
        swapped.extend(std::iter::repeat_n(0x22u8, 4096));
        swapped.extend(std::iter::repeat_n(0x11u8, 4096));
        assert_ne!(crc32c(&data), crc32c(&swapped));
    }
}
