//! Software CRC-32C (Castagnoli polynomial, reflected).
//!
//! Every database page in this workspace carries a CRC-32C over its payload
//! (see `spf-storage`). A checksum mismatch on read is the canonical
//! *in-page* test of the paper's Section 4.2 ("Many single-page failures may
//! be discovered by in-page tests, e.g., parity and checksum calculations").
//!
//! The implementation is the classic byte-at-a-time table-driven algorithm:
//! a 256-entry table computed at first use from the reflected polynomial
//! `0x82F63B78`. CRC-32C was chosen over CRC-32 (IEEE) because it is what
//! production engines use for page checksums (e.g. PostgreSQL data
//! checksums, RocksDB block checksums) and it detects all single-bit and
//! all two-bit errors within a page-sized payload.

/// Reflected CRC-32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Lazily built 256-entry lookup table.
///
/// `const fn` construction keeps the table in rodata; no runtime init cost.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32C of `data` in one shot.
///
/// ```
/// // Known-answer test vector from RFC 3720 (iSCSI): CRC-32C("123456789").
/// assert_eq!(spf_util::crc32c(b"123456789"), 0xE306_9283);
/// ```
#[must_use]
pub fn crc32c(data: &[u8]) -> u32 {
    let mut hasher = Crc32c::new();
    hasher.update(data);
    hasher.finalize()
}

/// Incremental CRC-32C hasher for multi-fragment payloads.
///
/// Used by the log manager to checksum a record header and body without
/// copying them into one buffer first.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Creates a hasher in the initial state.
    #[must_use]
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Consumes the hasher and returns the final checksum.
    #[must_use]
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_rfc3720() {
        // RFC 3720 B.4 test vector.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn all_zero_block() {
        // RFC 3720: 32 bytes of zeros -> 0x8A9136AA.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn all_ones_block() {
        // RFC 3720: 32 bytes of 0xFF -> 0x62A8AB43.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn ascending_block() {
        // RFC 3720: bytes 0x00..0x1F -> 0x46DD794E.
        let data: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&data), 0x46DD_794E);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(8192).collect();
        let mut hasher = Crc32c::new();
        for chunk in data.chunks(97) {
            hasher.update(chunk);
        }
        assert_eq!(hasher.finalize(), crc32c(&data));
    }

    #[test]
    fn detects_single_bit_flip_in_page_sized_payload() {
        let mut data = vec![0xA5u8; 8192];
        let clean = crc32c(&data);
        for bit in [0usize, 1, 7, 8, 63, 8191 * 8, 8191 * 8 + 7] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&data), clean, "bit {bit} flip went undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32c(&data), clean);
    }

    #[test]
    fn detects_swapped_halves() {
        // A lost write that presents another valid-looking sector must not
        // collide. Swapping two distinct halves changes the checksum.
        let mut data = Vec::new();
        data.extend(std::iter::repeat_n(0x11u8, 4096));
        data.extend(std::iter::repeat_n(0x22u8, 4096));
        let mut swapped = Vec::new();
        swapped.extend(std::iter::repeat_n(0x22u8, 4096));
        swapped.extend(std::iter::repeat_n(0x11u8, 4096));
        assert_ne!(crc32c(&data), crc32c(&swapped));
    }
}
