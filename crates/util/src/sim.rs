//! Deterministic simulated clock and I/O cost model.
//!
//! Section 6 of the paper reasons about recovery performance purely in
//! terms of I/O counts multiplied by device constants:
//!
//! > "restoring a backup with 100 GB of data at 100 MB/s requires 1,000 s
//! > or about 17 minutes. Restoring a modern disk device of 2 TB at
//! > 200 MB/s requires 10,000 s or about 3 hours. [...] \[single-page
//! > recovery\] may take dozens of I/Os in order to read the required log
//! > records in the recovery log plus one I/O for the backup page. Thus,
//! > pure I/O time should perhaps be 1 s."
//!
//! To reproduce that arithmetic deterministically, every simulated device
//! in this workspace charges its I/Os against a shared [`SimClock`]. The
//! clock advances only when charged; wall-clock time plays no role. The
//! cost model distinguishes random I/Os (which pay a per-operation access
//! latency, i.e. seek + rotation on disks, translation-layer latency on
//! flash) from sequential transfer (which pays bandwidth only), because the
//! paper's media-recovery arithmetic is bandwidth-bound while its
//! single-page arithmetic is latency-bound.

use std::sync::atomic::{AtomicU64, Ordering};

/// A duration on the simulated timeline, in nanoseconds.
///
/// A newtype (rather than `std::time::Duration`) keeps simulated and real
/// time from being confused, and gives us convenient formatting for the
/// experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimDuration {
    nanos: u64,
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration { nanos: 0 };

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        Self { nanos }
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Self {
            nanos: micros * 1_000,
        }
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Self {
            nanos: millis * 1_000_000,
        }
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self {
            nanos: secs * 1_000_000_000,
        }
    }

    /// The duration in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// The duration in (fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// The duration in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Saturating sum of two durations.
    #[must_use]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_add(other.nanos),
        }
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos + rhs.nanos,
        }
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.nanos += rhs.nanos;
    }
}

impl std::ops::Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let secs = self.as_secs_f64();
        if secs >= 100.0 {
            write!(f, "{secs:.0} s")
        } else if secs >= 1.0 {
            write!(f, "{secs:.2} s")
        } else if secs >= 1e-3 {
            write!(f, "{:.2} ms", secs * 1e3)
        } else if secs >= 1e-6 {
            write!(f, "{:.2} µs", secs * 1e6)
        } else {
            write!(f, "{} ns", self.nanos)
        }
    }
}

/// The kind of I/O being charged, for the cost model and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// A random (latency-bound) page read.
    RandomRead,
    /// A random (latency-bound) page write.
    RandomWrite,
    /// A sequential (bandwidth-bound) read, e.g. a log or backup scan.
    SequentialRead,
    /// A sequential (bandwidth-bound) write, e.g. log append or backup.
    SequentialWrite,
}

/// Device constants translating I/O operations into simulated time.
///
/// The presets mirror the constants the paper uses in Section 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoCostModel {
    /// Per-operation latency of a random access (seek + rotation, or flash
    /// translation-layer overhead).
    pub random_access: SimDuration,
    /// Sustained sequential bandwidth in bytes per second.
    pub sequential_bandwidth: u64,
    /// Per-operation latency charged even for sequential transfers
    /// (command overhead). Usually small.
    pub command_overhead: SimDuration,
}

impl IoCostModel {
    /// A 7,200 rpm enterprise disk circa the paper: ~8 ms random access,
    /// 100 MB/s sequential. Matches "100 GB at 100 MB/s requires 1,000 s".
    #[must_use]
    pub const fn disk_2012() -> Self {
        Self {
            random_access: SimDuration::from_millis(8),
            sequential_bandwidth: 100 * 1_000_000,
            command_overhead: SimDuration::from_micros(100),
        }
    }

    /// The paper's "modern disk device of 2 TB at 200 MB/s" (~5 ms access).
    #[must_use]
    pub const fn disk_modern() -> Self {
        Self {
            random_access: SimDuration::from_millis(5),
            sequential_bandwidth: 200 * 1_000_000,
            command_overhead: SimDuration::from_micros(100),
        }
    }

    /// A SATA flash device: ~100 µs random access, 500 MB/s sequential.
    #[must_use]
    pub const fn flash() -> Self {
        Self {
            random_access: SimDuration::from_micros(100),
            sequential_bandwidth: 500 * 1_000_000,
            command_overhead: SimDuration::from_micros(10),
        }
    }

    /// A zero-cost model: the clock never advances. Useful in unit tests
    /// that assert on I/O *counts* rather than times.
    #[must_use]
    pub const fn free() -> Self {
        Self {
            random_access: SimDuration::ZERO,
            sequential_bandwidth: u64::MAX,
            command_overhead: SimDuration::ZERO,
        }
    }

    /// Computes the simulated cost of one I/O of `kind` transferring
    /// `bytes` bytes.
    #[must_use]
    pub fn cost(&self, kind: IoKind, bytes: usize) -> SimDuration {
        let transfer_nanos = if self.sequential_bandwidth == u64::MAX {
            0
        } else {
            // ns = bytes / (bytes/s) * 1e9, computed in u128 to avoid overflow.
            ((bytes as u128) * 1_000_000_000u128 / self.sequential_bandwidth as u128) as u64
        };
        let transfer = SimDuration::from_nanos(transfer_nanos);
        match kind {
            IoKind::RandomRead | IoKind::RandomWrite => {
                self.random_access + self.command_overhead + transfer
            }
            IoKind::SequentialRead | IoKind::SequentialWrite => self.command_overhead + transfer,
        }
    }
}

impl Default for IoCostModel {
    fn default() -> Self {
        Self::disk_2012()
    }
}

/// A monotonically advancing simulated clock, shared by all devices of a
/// simulated system.
///
/// Thread-safe; charging is a single atomic add so the clock can be shared
/// across the buffer pool's background writer and foreground threads in
/// concurrent tests.
#[derive(Debug, Default)]
pub struct SimClock {
    now_nanos: AtomicU64,
}

impl SimClock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            now_nanos: AtomicU64::new(0),
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimDuration {
        SimDuration::from_nanos(self.now_nanos.load(Ordering::Relaxed))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimDuration {
        let new = self.now_nanos.fetch_add(d.as_nanos(), Ordering::Relaxed) + d.as_nanos();
        SimDuration::from_nanos(new)
    }

    /// Elapsed simulated time since `start`.
    #[must_use]
    pub fn since(&self, start: SimDuration) -> SimDuration {
        self.now() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_media_recovery_arithmetic_100gb() {
        // "restoring a backup with 100 GB of data at 100 MB/s requires
        // 1,000 s or about 17 minutes."
        let model = IoCostModel::disk_2012();
        let cost = model.cost(IoKind::SequentialRead, 100 * 1_000_000_000);
        let secs = cost.as_secs_f64();
        assert!((secs - 1000.0).abs() < 1.0, "got {secs} s");
    }

    #[test]
    fn paper_media_recovery_arithmetic_2tb() {
        // "Restoring a modern disk device of 2 TB at 200 MB/s requires
        // 10,000 s or about 3 hours."
        let model = IoCostModel::disk_modern();
        let cost = model.cost(IoKind::SequentialRead, 2_000_000_000_000);
        let secs = cost.as_secs_f64();
        assert!((secs - 10_000.0).abs() < 1.0, "got {secs} s");
    }

    #[test]
    fn paper_single_page_arithmetic() {
        // "It may take dozens of I/Os [...] pure I/O time should perhaps
        // be 1 s" — dozens of random 8 ms I/Os land well under a second,
        // ~0.5 s at 60 I/Os.
        let model = IoCostModel::disk_2012();
        let mut total = SimDuration::ZERO;
        for _ in 0..60 {
            total += model.cost(IoKind::RandomRead, 8192);
        }
        let secs = total.as_secs_f64();
        assert!(secs < 1.0, "dozens of I/Os should be under 1 s, got {secs}");
        assert!(
            secs > 0.3,
            "should be a noticeable fraction of a second, got {secs}"
        );
    }

    #[test]
    fn random_io_pays_latency_sequential_does_not() {
        let model = IoCostModel::disk_2012();
        let rand = model.cost(IoKind::RandomRead, 8192);
        let seq = model.cost(IoKind::SequentialRead, 8192);
        assert!(rand.as_nanos() > seq.as_nanos() * 10);
    }

    #[test]
    fn clock_advances_monotonically() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimDuration::ZERO);
        clock.advance(SimDuration::from_millis(5));
        clock.advance(SimDuration::from_millis(3));
        assert_eq!(clock.now(), SimDuration::from_millis(8));
    }

    #[test]
    fn free_model_never_advances() {
        let model = IoCostModel::free();
        assert_eq!(model.cost(IoKind::RandomRead, 1 << 20), SimDuration::ZERO);
        assert_eq!(
            model.cost(IoKind::SequentialWrite, 1 << 30),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(SimDuration::from_secs(1200).to_string(), "1200 s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.50 s");
        assert_eq!(SimDuration::from_micros(2500).to_string(), "2.50 ms");
        assert_eq!(SimDuration::from_nanos(1500).to_string(), "1.50 µs");
        assert_eq!(SimDuration::from_nanos(999).to_string(), "999 ns");
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!((a + b).as_millis_f64(), 14.0);
        assert_eq!((a - b).as_millis_f64(), 6.0);
        // Subtraction saturates rather than wrapping.
        assert_eq!((b - a), SimDuration::ZERO);
    }
}
