//! Little-endian binary encoding and decoding helpers.
//!
//! The page format (`spf-storage`) and log record format (`spf-wal`) are
//! hand-rolled binary layouts, as in a real storage engine. This module
//! centralizes the fiddly parts: bounds-checked reads, fixed-width
//! little-endian integers, length-prefixed byte strings, and LEB128
//! variable-length integers (used where ranges are usually tiny, e.g. slot
//! counts inside log records).
//!
//! Decoding never panics on malformed input: every read returns
//! [`DecodeError`] on truncation or overflow, because decoders in this
//! workspace routinely face *deliberately corrupted* bytes injected by the
//! fault injector.

use std::fmt;

/// Error returned when decoding runs off the end of the buffer or meets a
/// malformed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the requested number of bytes.
    UnexpectedEof {
        /// Bytes requested by the failed read.
        wanted: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A varint used more bytes than its target type permits.
    VarintOverflow,
    /// A length prefix exceeded a sanity bound.
    LengthOutOfRange {
        /// The decoded length.
        got: usize,
        /// The maximum the caller allowed.
        max: usize,
    },
    /// A tag byte did not correspond to any known variant.
    InvalidTag {
        /// The unrecognized tag value.
        tag: u8,
        /// Human-readable name of the enum being decoded.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { wanted, remaining } => {
                write!(
                    f,
                    "unexpected end of buffer: wanted {wanted} bytes, {remaining} remain"
                )
            }
            DecodeError::VarintOverflow => write!(f, "varint overflows target type"),
            DecodeError::LengthOutOfRange { got, max } => {
                write!(f, "length {got} out of range (max {max})")
            }
            DecodeError::InvalidTag { tag, what } => {
                write!(f, "invalid tag {tag:#04x} while decoding {what}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only binary encoder over a growable byte vector.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Creates an encoder with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a varint length prefix followed by the bytes.
    pub fn put_len_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.put_bytes(v);
    }
}

/// Bounds-checked binary decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset from the start of the buffer.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True when the decoder has consumed every byte.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Reads a LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(DecodeError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError::VarintOverflow);
            }
        }
    }

    /// Reads a varint length prefix, validates it against `max`, then reads
    /// that many bytes.
    pub fn get_len_bytes(&mut self, max: usize) -> Result<&'a [u8], DecodeError> {
        let len = self.get_varint()? as usize;
        if len > max {
            return Err(DecodeError::LengthOutOfRange { got: len, max });
        }
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_width_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(0xAB);
        enc.put_u16(0xBEEF);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(0x0123_4567_89AB_CDEF);
        let bytes = enc.finish();
        assert_eq!(bytes.len(), 1 + 2 + 4 + 8);

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 0xAB);
        assert_eq!(dec.get_u16().unwrap(), 0xBEEF);
        assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn truncated_read_reports_eof() {
        let mut dec = Decoder::new(&[1, 2, 3]);
        assert_eq!(
            dec.get_u32(),
            Err(DecodeError::UnexpectedEof {
                wanted: 4,
                remaining: 3
            })
        );
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut enc = Encoder::new();
            enc.put_varint(v);
            let bytes = enc.finish();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(dec.get_varint().unwrap(), v, "value {v}");
            assert!(dec.is_exhausted());
        }
    }

    #[test]
    fn varint_max_is_ten_bytes() {
        let mut enc = Encoder::new();
        enc.put_varint(u64::MAX);
        assert_eq!(enc.len(), 10);
    }

    #[test]
    fn varint_overflow_detected() {
        // Eleven continuation bytes can never be a valid u64 varint.
        let bytes = [0xFFu8; 11];
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_varint(), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn len_bytes_respects_max() {
        let mut enc = Encoder::new();
        enc.put_len_bytes(&[9u8; 100]);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(
            dec.get_len_bytes(50),
            Err(DecodeError::LengthOutOfRange { got: 100, max: 50 })
        );
    }

    #[test]
    fn len_bytes_round_trip() {
        let payload = b"fence keys contain all information";
        let mut enc = Encoder::new();
        enc.put_len_bytes(payload);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_len_bytes(1024).unwrap(), payload);
    }

    proptest! {
        #[test]
        fn prop_varint_round_trip(v: u64) {
            let mut enc = Encoder::new();
            enc.put_varint(v);
            let bytes = enc.finish();
            let mut dec = Decoder::new(&bytes);
            prop_assert_eq!(dec.get_varint().unwrap(), v);
            prop_assert!(dec.is_exhausted());
        }

        #[test]
        fn prop_mixed_round_trip(a: u8, b: u16, c: u32, d: u64, bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut enc = Encoder::new();
            enc.put_u8(a);
            enc.put_len_bytes(&bytes);
            enc.put_u16(b);
            enc.put_u32(c);
            enc.put_varint(d);
            let out = enc.finish();
            let mut dec = Decoder::new(&out);
            prop_assert_eq!(dec.get_u8().unwrap(), a);
            prop_assert_eq!(dec.get_len_bytes(256).unwrap(), &bytes[..]);
            prop_assert_eq!(dec.get_u16().unwrap(), b);
            prop_assert_eq!(dec.get_u32().unwrap(), c);
            prop_assert_eq!(dec.get_varint().unwrap(), d);
            prop_assert!(dec.is_exhausted());
        }

        #[test]
        fn prop_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut dec = Decoder::new(&bytes);
            // Whatever the bytes, decoding must return, not panic.
            let _ = dec.get_varint();
            let _ = dec.get_u64();
            let _ = dec.get_len_bytes(16);
        }
    }
}
