//! The detector ladder: which check catches which failure.
//!
//! Mirrors the fault table in `spf_storage::fault` — every armed fault
//! is documented there with the detector expected to catch it, and
//! [`DetectorClass::expected_for`] returns exactly that documented set
//! so tests can assert attribution.

use spf_btree::NodeView;
use spf_storage::{CorruptionMode, FaultSpec, Page, PageDefect, PageId, PageType};
use spf_wal::Lsn;

/// Which rung of the detector ladder caught a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorClass {
    /// The CRC-32C page checksum.
    Checksum,
    /// The self-identifying page id.
    SelfId,
    /// Header/slot plausibility (unknown page type, offsets and lengths
    /// outside the page, heap/slot-array overlap).
    Plausibility,
    /// B-tree fence-key plausibility (`NodeView` invariants): the
    /// cross-structure check that catches damage protected by a valid
    /// checksum.
    FenceKeys,
    /// The PageLSN cross-check against the page recovery index: the
    /// lost-write detector.
    StaleLsn,
    /// The device returned an explicit read error.
    HardError,
}

impl DetectorClass {
    /// The class's code in flight-recorder event payloads
    /// ([`spf_obs::detector`]).
    #[must_use]
    pub fn obs_code(self) -> u64 {
        match self {
            DetectorClass::Checksum => spf_obs::detector::CHECKSUM,
            DetectorClass::SelfId => spf_obs::detector::WRONG_ID,
            DetectorClass::Plausibility => spf_obs::detector::PLAUSIBILITY,
            DetectorClass::FenceKeys => spf_obs::detector::FENCE_KEYS,
            DetectorClass::StaleLsn => spf_obs::detector::STALE_LSN,
            DetectorClass::HardError => spf_obs::detector::HARD_ERROR,
        }
    }

    /// The class's stable name in the repair audit ledger.
    #[must_use]
    pub fn obs_name(self) -> &'static str {
        spf_obs::detector::name(self.obs_code())
    }

    /// The detector classes the fault table documents as able to catch
    /// `fault`, primary first.
    #[must_use]
    pub fn expected_for(fault: &FaultSpec) -> &'static [DetectorClass] {
        match fault {
            FaultSpec::SilentCorruption(mode) => match mode {
                CorruptionMode::BitRot { .. } => &[DetectorClass::Checksum],
                CorruptionMode::ZeroPage => &[DetectorClass::Checksum, DetectorClass::Plausibility],
                CorruptionMode::GarbageHeader => {
                    &[DetectorClass::Plausibility, DetectorClass::FenceKeys]
                }
                CorruptionMode::StaleVersion => &[DetectorClass::StaleLsn],
                CorruptionMode::Misdirected { .. } => &[DetectorClass::SelfId],
            },
            FaultSpec::TornWrite { .. } => &[DetectorClass::Checksum],
            FaultSpec::HardReadError | FaultSpec::WearOut { .. } => &[DetectorClass::HardError],
            // A dropped sync leaves an older-but-valid image — the
            // lost-write signature only the PageLSN cross-check sees. A
            // fail-stop mid-sync leaves a torn page on the next start.
            FaultSpec::LostWriteAtSync => &[DetectorClass::StaleLsn],
            FaultSpec::FailStopDuringSync { .. } => {
                &[DetectorClass::Checksum, DetectorClass::StaleLsn]
            }
        }
    }

    /// Maps an in-page defect to its detector class.
    #[must_use]
    pub fn of_defect(defect: &PageDefect) -> DetectorClass {
        match defect {
            PageDefect::ChecksumMismatch { .. } => DetectorClass::Checksum,
            PageDefect::WrongPageId { .. } => DetectorClass::SelfId,
            PageDefect::UnknownPageType(_)
            | PageDefect::ImplausibleHeader(_)
            | PageDefect::ImplausibleSlot { .. } => DetectorClass::Plausibility,
        }
    }
}

impl std::fmt::Display for DetectorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorClass::Checksum => write!(f, "checksum"),
            DetectorClass::SelfId => write!(f, "self-id"),
            DetectorClass::Plausibility => write!(f, "plausibility"),
            DetectorClass::FenceKeys => write!(f, "fence-keys"),
            DetectorClass::StaleLsn => write!(f, "stale-lsn"),
            DetectorClass::HardError => write!(f, "hard-error"),
        }
    }
}

/// Runs the full ladder over an image read from the device and returns
/// the first failing rung, with a human-readable detail.
///
/// `expected_lsn` is the page recovery index's `latest_lsn` **as
/// snapshotted before the device read** — that ordering is what makes
/// the stale check race-free against concurrent write-backs: the PRI is
/// only advanced *after* a device write completes, so an image read
/// after the snapshot can never be legitimately older than it.
#[must_use]
pub fn run_ladder(
    id: PageId,
    page: &Page,
    expected_lsn: Option<Lsn>,
) -> Option<(DetectorClass, String)> {
    // Rung 1: everything verifiable from the page alone.
    if let Err(defect) = page.verify(id) {
        return Some((DetectorClass::of_defect(&defect), defect.to_string()));
    }
    // Rung 2: the PageLSN cross-check (lost writes).
    if let Some(expected) = expected_lsn {
        let found = Lsn(page.page_lsn());
        if found < expected {
            return Some((
                DetectorClass::StaleLsn,
                format!("stale page: PageLSN {found}, page recovery index expects {expected}"),
            ));
        }
    }
    // Rung 3: cross-structure fence-key plausibility for B-tree nodes.
    if matches!(
        page.page_type(),
        Some(PageType::BTreeLeaf | PageType::BTreeBranch)
    ) {
        match NodeView::new(page) {
            Ok(view) => {
                let violations = view.check_invariants();
                if !violations.is_empty() {
                    return Some((DetectorClass::FenceKeys, violations.join("; ")));
                }
            }
            Err(e) => return Some((DetectorClass::FenceKeys, e.to_string())),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_btree::node::{build_node, leaf_record, NodeKind};
    use spf_btree::Bound;
    use spf_storage::DEFAULT_PAGE_SIZE;

    fn clean_leaf(id: u64) -> Page {
        let payload = vec![
            (leaf_record(b"cat", b"1"), false),
            (leaf_record(b"dog", b"2"), false),
        ];
        let mut page = build_node(
            DEFAULT_PAGE_SIZE,
            PageId(id),
            NodeKind::Leaf,
            0,
            (&Bound::NegInf, &Bound::PosInf),
            &payload,
            None,
        );
        page.set_page_lsn(10);
        page.finalize_checksum();
        page
    }

    #[test]
    fn clean_page_passes_every_rung() {
        let page = clean_leaf(3);
        assert_eq!(run_ladder(PageId(3), &page, Some(Lsn(10))), None);
        assert_eq!(run_ladder(PageId(3), &page, None), None);
    }

    #[test]
    fn checksum_rung_fires_first() {
        let mut page = clean_leaf(3);
        page.as_bytes_mut()[2000] ^= 0xFF;
        let (class, _) = run_ladder(PageId(3), &page, None).unwrap();
        assert_eq!(class, DetectorClass::Checksum);
    }

    #[test]
    fn self_id_rung() {
        let page = clean_leaf(4);
        let (class, detail) = run_ladder(PageId(9), &page, None).unwrap();
        assert_eq!(class, DetectorClass::SelfId);
        assert!(detail.contains("wrong page id"), "{detail}");
    }

    #[test]
    fn stale_rung_compares_against_snapshot() {
        let page = clean_leaf(5);
        let (class, _) = run_ladder(PageId(5), &page, Some(Lsn(99))).unwrap();
        assert_eq!(class, DetectorClass::StaleLsn);
        // Newer than expected is fine (the PRI missed a write, not us).
        assert_eq!(run_ladder(PageId(5), &page, Some(Lsn(3))), None);
    }

    #[test]
    fn fence_rung_catches_checksum_valid_damage() {
        // Swap fences so low >= high, then re-checksum: in-page tests
        // pass, only the cross-structure rung can object.
        let payload = vec![(leaf_record(b"m", b"1"), false)];
        let mut page = build_node(
            DEFAULT_PAGE_SIZE,
            PageId(6),
            NodeKind::Leaf,
            0,
            (&Bound::Key(b"z".to_vec()), &Bound::Key(b"a".to_vec())),
            &payload,
            None,
        );
        page.finalize_checksum();
        assert_eq!(page.verify(PageId(6)), Ok(()));
        let (class, detail) = run_ladder(PageId(6), &page, None).unwrap();
        assert_eq!(class, DetectorClass::FenceKeys);
        assert!(
            detail.contains("out of order") || detail.contains("fence"),
            "{detail}"
        );
    }

    #[test]
    fn expected_for_mirrors_fault_table() {
        assert_eq!(
            DetectorClass::expected_for(&FaultSpec::SilentCorruption(CorruptionMode::BitRot {
                bits: 3
            })),
            &[DetectorClass::Checksum]
        );
        assert_eq!(
            DetectorClass::expected_for(&FaultSpec::SilentCorruption(CorruptionMode::StaleVersion)),
            &[DetectorClass::StaleLsn]
        );
        assert_eq!(
            DetectorClass::expected_for(&FaultSpec::HardReadError),
            &[DetectorClass::HardError]
        );
        assert!(DetectorClass::expected_for(&FaultSpec::SilentCorruption(
            CorruptionMode::GarbageHeader
        ))
        .contains(&DetectorClass::FenceKeys));
    }
}
