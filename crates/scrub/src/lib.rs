//! # spf-scrub
//!
//! The online page scrubber: background detection sweeps plus a
//! self-healing repair queue.
//!
//! The paper's detection story has two halves. The read path (buffer
//! pool Figure 8, fence-key verification §4.2) catches a failure the
//! moment a *foreground* access faults the page in — but a page nobody
//! reads stays unchecked, and "the probability of data loss increases
//! with the time between local failure and invocation of single-page
//! recovery" (the failure-class escalation of Figure 1 is exactly what
//! grows in that window). The paper's fix is continuous checking: "with
//! continuous self-testing of the storage layer, verification of a
//! database backup might not be required" — i.e. a scrubber.
//!
//! [`Scrubber`] sweeps the device in rate-limited cycles and runs the
//! full **detector ladder** on every allocated page:
//!
//! 1. in-page tests (`Page::verify`): CRC-32C checksum, self-identifying
//!    page id, page type, header/slot plausibility;
//! 2. the **PageLSN cross-check** against the page recovery index — the
//!    lost-write detector no in-page test can replace;
//! 3. **B-tree fence-key plausibility** (`NodeView::check_invariants`) —
//!    cross-structure redundancy that catches damage written with a
//!    fresh, valid checksum.
//!
//! Findings go to a repair queue drained through the pool-cooperative
//! [`spf_buffer::BufferPool::repair_absent`] path, so foreground
//! fetches coalesce behind an in-flight repair exactly as they would
//! behind a foreground miss. When repair fails, the failure **escalates
//! along Figure 1** ([`spf_recovery::FailureClass::escalates_to`]) and
//! the escalation is recorded rather than panicking the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod detector;
pub mod scrubber;

pub use config::ScrubConfig;
pub use detector::DetectorClass;
pub use scrubber::{
    FixedExtent, ScanExtent, ScrubCycleReport, ScrubEscalation, ScrubFinding, ScrubStats, Scrubber,
};
