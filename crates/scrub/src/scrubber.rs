//! The scrubber proper: rate-limited sweep cycles, the pool-cooperation
//! protocol, the repair queue, and statistics.
//!
//! ## Pool-cooperation protocol (no false positives, no lost updates)
//!
//! Concurrent foreground traffic makes naive scrubbing wrong in two
//! ways: a write-back racing the sweep can make a perfectly good device
//! image look stale, and "repairing" a page whose newer version lives
//! dirty in the buffer pool would destroy committed work. The protocol:
//!
//! 1. **Probe first.** A page resident *dirty* is skipped on the device
//!    side — the pooled copy is the authoritative newest version and its
//!    write-back will refresh the device anyway. It is instead verified
//!    *in place* (structural checks under the page latch).
//! 2. **PRI before device.** For everything else the expected PageLSN is
//!    snapshotted from the page recovery index *before* the device read.
//!    The PRI only advances after a device write completes, so an image
//!    read after the snapshot can never be legitimately older than it —
//!    a write-back can therefore never race the sweep into a false
//!    stale-LSN positive.
//! 3. **Repair behind the miss marker.** Repairs go through
//!    [`BufferPool::repair_absent`]: the scrubber claims the same
//!    in-flight marker a miss leader would, so foreground fetches of the
//!    page coalesce behind the repair and resolve as hits on the
//!    recovered image. A page that became resident between detection and
//!    repair was already fetched — and therefore already verified and,
//!    if needed, repaired inline — by the foreground (Figure 8); the
//!    queue entry is retired as *deferred*, not retried blindly.
//! 4. **Escalate, never panic.** A repair the single-page recoverer
//!    declines is recorded and escalated along Figure 1
//!    ([`FailureClass::escalates_to`]): to a media failure, and on a
//!    single-device node on to a system failure.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use spf_buffer::{BufferPool, PageRecoverer, RecoverOutcome, RepairOutcome, Residency};
use spf_obs::{EventKind, Obs, Span};
use spf_prefetch::{BackgroundIo, IoGovernor};
use spf_recovery::{FailureClass, PageRecoveryIndex};
use spf_storage::{Device, Page, PageId, StorageDevice, StorageError};
use spf_util::{SimClock, SimDuration};

use crate::config::ScrubConfig;
use crate::detector::{run_ladder, DetectorClass};

/// Tells the scrubber how far the allocated page range extends; the
/// sweep covers `[0, allocated_pages())` of the device.
pub trait ScanExtent: Send + Sync {
    /// Number of allocated pages (ids below this may be scrubbed).
    fn allocated_pages(&self) -> u64;
}

/// A fixed scan extent, for tests and benches.
#[derive(Debug, Clone, Copy)]
pub struct FixedExtent(pub u64);

impl ScanExtent for FixedExtent {
    fn allocated_pages(&self) -> u64 {
        self.0
    }
}

/// One confirmed detection.
#[derive(Debug, Clone)]
pub struct ScrubFinding {
    /// The failed page.
    pub page: PageId,
    /// The ladder rung that caught it.
    pub detector: DetectorClass,
    /// Human-readable description of what the detector saw.
    pub detail: String,
    /// Found by verify-in-place on a *dirty resident* frame. The newest
    /// version of the page exists only in that frame, so this is beyond
    /// single-page repair — the repair queue skips it.
    pub in_pool: bool,
}

/// A repair failure, escalated along Figure 1.
#[derive(Debug, Clone)]
pub struct ScrubEscalation {
    /// The page whose repair failed.
    pub page: PageId,
    /// The class the failure escalated to (`Media`, or `System` on a
    /// single-device node).
    pub escalated_to: FailureClass,
    /// Why single-page repair declined.
    pub reason: String,
}

/// What one sweep cycle saw and did.
#[derive(Debug, Default)]
pub struct ScrubCycleReport {
    /// Device images scanned through the detector ladder.
    pub pages_scanned: u64,
    /// Dirty resident pages verified in place instead.
    pub verified_in_pool: u64,
    /// Confirmed detections, in scan order.
    pub findings: Vec<ScrubFinding>,
    /// Findings repaired (recovered image installed and flushed).
    pub repairs: u64,
    /// Findings retired because the page was resident or busy by repair
    /// time (the foreground already ran Figure 8 on it).
    pub repairs_deferred: u64,
    /// Findings whose repair failed and escalated.
    pub escalations: Vec<ScrubEscalation>,
}

/// Cumulative scrubber statistics (`DbStats.scrub`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Completed full sweep cycles.
    pub cycles_completed: u64,
    /// Device images scanned through the detector ladder.
    pub pages_scanned: u64,
    /// Dirty resident pages verified in place.
    pub verified_in_pool: u64,
    /// In-place verifications that found structural damage in a dirty
    /// frame (beyond single-page repair: the newest version of the page
    /// exists only there).
    pub in_pool_violations: u64,
    /// Pages skipped because a foreground read/repair was in flight.
    pub skipped_busy: u64,
    /// Findings caught by the page checksum.
    pub found_checksum: u64,
    /// Findings caught by the self-identifying page id.
    pub found_self_id: u64,
    /// Findings caught by header/slot plausibility.
    pub found_plausibility: u64,
    /// Findings caught by B-tree fence-key plausibility.
    pub found_fence_keys: u64,
    /// Findings caught by the PageLSN cross-check (lost writes).
    pub found_stale_lsn: u64,
    /// Findings surfaced as explicit device read errors.
    pub found_hard_error: u64,
    /// Successful queue-driven repairs.
    pub repairs: u64,
    /// Findings retired because the foreground got there first.
    pub repairs_deferred: u64,
    /// Repairs the single-page recoverer declined.
    pub repair_failures: u64,
    /// Repair failures escalated to a media failure (every failure takes
    /// at least this hop).
    pub escalations_media: u64,
    /// Repair failures escalated on to a system failure (single-device
    /// nodes only).
    pub escalations_system: u64,
    /// Sum of simulated detection latencies (fault present → scrubbed),
    /// measured as time since the page's previous sweep visit.
    pub detect_latency_total: SimDuration,
    /// Findings with a measured detection latency.
    pub detect_latency_samples: u64,
}

impl ScrubStats {
    /// Total findings across all detector classes.
    #[must_use]
    pub fn findings_total(&self) -> u64 {
        self.found_checksum
            + self.found_self_id
            + self.found_plausibility
            + self.found_fence_keys
            + self.found_stale_lsn
            + self.found_hard_error
    }

    /// Simulated mean time-to-detect: the average gap between a page's
    /// previous (clean) sweep visit and the visit that caught it — an
    /// upper bound on how long the fault sat latent, bounded by the
    /// sweep period the I/O budget buys.
    #[must_use]
    pub fn mean_time_to_detect(&self) -> Option<SimDuration> {
        (self.detect_latency_samples > 0).then(|| {
            SimDuration::from_nanos(
                self.detect_latency_total.as_nanos() / self.detect_latency_samples,
            )
        })
    }

    /// Findings by detector class, for attribution checks.
    #[must_use]
    pub fn found_by(&self, class: DetectorClass) -> u64 {
        match class {
            DetectorClass::Checksum => self.found_checksum,
            DetectorClass::SelfId => self.found_self_id,
            DetectorClass::Plausibility => self.found_plausibility,
            DetectorClass::FenceKeys => self.found_fence_keys,
            DetectorClass::StaleLsn => self.found_stale_lsn,
            DetectorClass::HardError => self.found_hard_error,
        }
    }
}

impl spf_obs::Observable for ScrubStats {
    fn observe(&self, g: &mut spf_obs::GroupBuilder) {
        g.counter("cycles_completed", self.cycles_completed)
            .counter("pages_scanned", self.pages_scanned)
            .counter("verified_in_pool", self.verified_in_pool)
            .counter("in_pool_violations", self.in_pool_violations)
            .counter("skipped_busy", self.skipped_busy)
            .counter("found_checksum", self.found_checksum)
            .counter("found_self_id", self.found_self_id)
            .counter("found_plausibility", self.found_plausibility)
            .counter("found_fence_keys", self.found_fence_keys)
            .counter("found_stale_lsn", self.found_stale_lsn)
            .counter("found_hard_error", self.found_hard_error)
            .counter("repairs", self.repairs)
            .counter("repairs_deferred", self.repairs_deferred)
            .counter("repair_failures", self.repair_failures)
            .counter("escalations_media", self.escalations_media)
            .counter("escalations_system", self.escalations_system)
            .counter(
                "detect_latency_total_nanos",
                self.detect_latency_total.as_nanos(),
            )
            .counter("detect_latency_samples", self.detect_latency_samples);
    }
}

struct ScrubState {
    stats: ScrubStats,
    /// Simulated time each page was last swept, for time-to-detect.
    last_visit: HashMap<PageId, SimDuration>,
    /// When the scrubber first ran (fallback baseline for latency).
    first_sweep: Option<SimDuration>,
    /// Escalated findings, for `DbStats` surfacing and diagnosis.
    escalated: Vec<ScrubEscalation>,
}

/// The online scrubber. Thread-safe and cheap to share behind an `Arc`:
/// one instance serves both `scrub_now` one-shot sweeps and the
/// background thread.
pub struct Scrubber {
    config: ScrubConfig,
    single_device_node: bool,
    device: Device,
    pool: BufferPool,
    pri: Arc<PageRecoveryIndex>,
    repairer: Option<Arc<dyn PageRecoverer>>,
    extent: Arc<dyn ScanExtent>,
    clock: Arc<SimClock>,
    state: Mutex<ScrubState>,
    stop: AtomicBool,
    /// Observability attach point ([`Scrubber::attach_obs`]).
    obs: OnceLock<Arc<Obs>>,
    /// Unified background-I/O budget ([`Scrubber::set_governor`]). When
    /// attached, per-page pacing draws from the shared bucket instead of
    /// the private `pages_per_tick`/`tick_idle` tick loop.
    governor: OnceLock<Arc<IoGovernor>>,
}

impl std::fmt::Debug for Scrubber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scrubber")
            .field("config", &self.config)
            .field("single_device_node", &self.single_device_node)
            .finish()
    }
}

impl Scrubber {
    /// Creates a scrubber over the engine's shared substrate handles.
    /// `repairer` is the single-page recoverer; without one every
    /// finding becomes a repair failure (and escalates), which is the
    /// traditional engine's behaviour made visible.
    #[must_use]
    pub fn new(
        config: ScrubConfig,
        single_device_node: bool,
        device: Device,
        pool: BufferPool,
        pri: Arc<PageRecoveryIndex>,
        repairer: Option<Arc<dyn PageRecoverer>>,
        extent: Arc<dyn ScanExtent>,
    ) -> Self {
        let clock = Arc::clone(device.clock());
        Self {
            config,
            single_device_node,
            device,
            pool,
            pri,
            repairer,
            extent,
            clock,
            state: Mutex::new(ScrubState {
                stats: ScrubStats::default(),
                last_visit: HashMap::new(),
                first_sweep: None,
                escalated: Vec::new(),
            }),
            stop: AtomicBool::new(false),
            obs: OnceLock::new(),
            governor: OnceLock::new(),
        }
    }

    /// Attaches the observability handle: sweeps gain span timing and a
    /// per-cycle event, findings feed per-detector-class MTTD into the
    /// repair audit ledger, and escalations are recorded there with the
    /// drained flight-recorder window that led up to them. At most one
    /// handle per scrubber; later calls are ignored.
    pub fn attach_obs(&self, obs: Arc<Obs>) {
        let _ = self.obs.set(obs);
    }

    /// Attaches the unified background-I/O governor: sweep pacing then
    /// draws one page of budget from the shared bucket per scanned page
    /// (blocking in simulated time), instead of running the private
    /// tick loop. At most one governor per scrubber; later calls are
    /// ignored.
    pub fn set_governor(&self, governor: Arc<IoGovernor>) {
        let _ = self.governor.set(governor);
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> ScrubConfig {
        self.config
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> ScrubStats {
        self.state.lock().stats
    }

    /// Clears statistics and latency baselines (between experiment
    /// phases).
    pub fn reset_stats(&self) {
        let mut state = self.state.lock();
        state.stats = ScrubStats::default();
        state.last_visit.clear();
        state.first_sweep = None;
        state.escalated.clear();
    }

    /// Every escalated repair failure recorded so far.
    #[must_use]
    pub fn escalated(&self) -> Vec<ScrubEscalation> {
        self.state.lock().escalated.clone()
    }

    /// Asks an in-progress or future cycle to stop after the current
    /// page. The background driver exits its loop on this flag.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether a stop has been requested.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Clears the stop flag (before starting a new background run).
    pub fn clear_stop(&self) {
        self.stop.store(false, Ordering::Relaxed);
    }

    /// One full sweep over the allocated extent: detect, then drain the
    /// repair queue. Safe to run concurrently with foreground traffic;
    /// aborts only if the whole device fails. A pending
    /// [`request_stop`](Scrubber::request_stop) is ignored — explicit
    /// one-shot sweeps must complete even when a previous background run
    /// left its stop flag behind (and must never *clear* that flag: a
    /// stopping background driver may depend on it being seen).
    pub fn run_cycle(&self) -> ScrubCycleReport {
        self.run_cycle_inner(false)
    }

    /// The background driver's sweep: like
    /// [`run_cycle`](Scrubber::run_cycle) but returns early (with
    /// whatever it found so far) once a stop is requested.
    pub fn run_cycle_interruptible(&self) -> ScrubCycleReport {
        self.run_cycle_inner(true)
    }

    fn run_cycle_inner(&self, interruptible: bool) -> ScrubCycleReport {
        let _span = self
            .obs
            .get()
            .map_or_else(spf_obs::SpanGuard::inert, |o| o.span(Span::ScrubSweep));
        // Sweeps are sampled like foreground operations: a sampled sweep
        // becomes its own trace tree, with any governor throttling as
        // child wait spans.
        let tspan = match self.obs.get() {
            Some(o) => {
                let ctx = o.sample_trace();
                if ctx.sampled() {
                    o.tracer().begin(
                        ctx,
                        spf_obs::SpanKind::ScrubSweep,
                        spf_obs::WaitClass::Run,
                        0,
                    )
                } else {
                    spf_obs::ActiveSpan::inert()
                }
            }
            None => spf_obs::ActiveSpan::inert(),
        };
        let tctx = tspan.ctx();
        let mut report = ScrubCycleReport::default();
        {
            let mut state = self.state.lock();
            if state.first_sweep.is_none() {
                state.first_sweep = Some(self.clock.now());
            }
        }
        let extent = self.extent.allocated_pages().min(self.device.capacity());
        // One reusable page buffer for the whole sweep: the per-page
        // ladder must not pay a heap allocation + zero-fill each.
        let mut image = Page::from_bytes(vec![0u8; self.device.page_size()]);
        let mut in_tick = 0usize;
        let mut completed = true;
        for pid in 0..extent {
            if interruptible && self.stop_requested() {
                completed = false;
                break;
            }
            if let Some(gov) = self.governor.get() {
                // Unified budget: pay for the page before reading it,
                // idling the simulated clock if the bucket is short.
                gov.acquire_traced(BackgroundIo::Scrub, 1, tctx);
            }
            if !self.scrub_page(PageId(pid), &mut image, &mut report) {
                completed = false;
                break; // media failure: nothing left to scrub
            }
            if self.governor.get().is_none() {
                // Legacy private pacing (no governor attached).
                in_tick += 1;
                if in_tick >= self.config.pages_per_tick {
                    in_tick = 0;
                    self.clock.advance(self.config.tick_idle);
                    // Let foreground threads through on real hardware too.
                    std::thread::yield_now();
                }
            }
        }
        self.drain_repairs(&mut report);
        let mut state = self.state.lock();
        if completed {
            state.stats.cycles_completed += 1;
        }
        drop(state);
        if let Some(o) = self.obs.get() {
            o.emit(
                EventKind::ScrubSweep,
                report.pages_scanned,
                report.findings.len() as u64,
            );
        }
        report
    }

    /// Detects on one page. Returns `false` when the device as a whole
    /// has failed (the cycle must abort). `image` is the sweep's reused
    /// read buffer.
    fn scrub_page(&self, id: PageId, image: &mut Page, report: &mut ScrubCycleReport) -> bool {
        match self.pool.probe(id) {
            Residency::Dirty => {
                self.verify_in_pool(id, report);
                return true;
            }
            Residency::InFlight => {
                self.state.lock().stats.skipped_busy += 1;
                return true;
            }
            Residency::Clean | Residency::Absent => {}
        }
        // Protocol step 2: snapshot the PRI expectation *before* the
        // device read (see module docs).
        let expected = self.pri.lookup(id).and_then(|e| e.latest_lsn);
        let outcome = match self.device.scan_read(id, image.as_bytes_mut()) {
            Err(StorageError::DeviceFailed) => return false,
            Err(StorageError::ReadFailed { .. }) => Some((
                DetectorClass::HardError,
                format!("unrecoverable read error on {id}"),
            )),
            Err(e) => Some((DetectorClass::HardError, e.to_string())),
            Ok(()) => run_ladder(id, image, expected),
        };
        let now = self.clock.now();
        let mut state = self.state.lock();
        state.stats.pages_scanned += 1;
        report.pages_scanned += 1;
        if let Some((detector, detail)) = outcome {
            match detector {
                DetectorClass::Checksum => state.stats.found_checksum += 1,
                DetectorClass::SelfId => state.stats.found_self_id += 1,
                DetectorClass::Plausibility => state.stats.found_plausibility += 1,
                DetectorClass::FenceKeys => state.stats.found_fence_keys += 1,
                DetectorClass::StaleLsn => state.stats.found_stale_lsn += 1,
                DetectorClass::HardError => state.stats.found_hard_error += 1,
            }
            // Time-to-detect: the fault arrived some time after this
            // page's previous (clean) visit; that gap is the latency the
            // scrub budget buys.
            let baseline = state
                .last_visit
                .get(&id)
                .copied()
                .or(state.first_sweep)
                .unwrap_or(SimDuration::ZERO);
            state.stats.detect_latency_total = state
                .stats
                .detect_latency_total
                .saturating_add(now - baseline);
            state.stats.detect_latency_samples += 1;
            if let Some(o) = self.obs.get() {
                o.emit(EventKind::FaultDetected, id.0, detector.obs_code());
                o.ledger()
                    .record_detection(detector.obs_name(), now - baseline);
            }
            report.findings.push(ScrubFinding {
                page: id,
                detector,
                detail,
                in_pool: false,
            });
        }
        state.last_visit.insert(id, now);
        true
    }

    /// Verify-in-place for a dirty resident page: structural checks
    /// under the page latch. The pooled copy has no finalized checksum,
    /// so only layout and fence plausibility apply; damage here is
    /// beyond single-page repair (the newest version exists only in this
    /// frame) and is counted rather than "repaired" into data loss.
    fn verify_in_pool(&self, id: PageId, report: &mut ScrubCycleReport) {
        let violation = self.pool.inspect_resident(id, |page| {
            if page.page_id() != id {
                return Some(format!(
                    "resident frame self-id mismatch: holds {}",
                    page.page_id()
                ));
            }
            if let Err(defect) = page.verify_layout() {
                return Some(defect.to_string());
            }
            None
        });
        let mut state = self.state.lock();
        match violation {
            None => {
                // Evicted between probe and inspect; the next cycle will
                // scrub the written-back image.
                state.stats.skipped_busy += 1;
            }
            Some(None) => {
                state.stats.verified_in_pool += 1;
                report.verified_in_pool += 1;
            }
            Some(Some(detail)) => {
                state.stats.verified_in_pool += 1;
                state.stats.in_pool_violations += 1;
                report.verified_in_pool += 1;
                report.findings.push(ScrubFinding {
                    page: id,
                    detector: DetectorClass::Plausibility,
                    detail: format!("in-pool (dirty frame): {detail}"),
                    in_pool: true,
                });
            }
        }
    }

    /// Drains this cycle's findings through the repair path (protocol
    /// steps 3 and 4).
    fn drain_repairs(&self, report: &mut ScrubCycleReport) {
        let queue: Vec<PageId> = report
            .findings
            .iter()
            // Dirty-frame damage is not repairable without data loss.
            .filter(|f| !f.in_pool)
            .map(|f| f.page)
            .collect();
        for id in queue {
            let repair_started = self.clock.now();
            if let Some(o) = self.obs.get() {
                o.emit(EventKind::RepairAttempt, id.0, 0);
            }
            let Some(repairer) = &self.repairer else {
                self.record_escalation(
                    report,
                    id,
                    "no single-page recoverer configured".to_string(),
                );
                continue;
            };
            // A clean resident copy pins the pool's (good, verified)
            // image in front of the failed device image. It must not be
            // retired until a recovered replacement is in hand — if
            // recovery declines, those reads must keep being served.
            let outcome = if matches!(self.pool.probe(id), Residency::Clean) {
                match repairer.recover(id) {
                    RecoverOutcome::Recovered(page) => {
                        if self.pool.try_discard_clean(id) {
                            self.pool.repair_absent(id, move || Ok(page))
                        } else {
                            // Pinned or re-dirtied: the foreground owns
                            // the page now; retry next cycle.
                            RepairOutcome::Busy
                        }
                    }
                    RecoverOutcome::Escalate(reason) => RepairOutcome::Failed(reason),
                }
            } else {
                self.pool.repair_absent(id, || match repairer.recover(id) {
                    RecoverOutcome::Recovered(page) => Ok(page),
                    RecoverOutcome::Escalate(reason) => Err(reason),
                })
            };
            match outcome {
                RepairOutcome::Repaired => {
                    // Persist immediately: the device image is what the
                    // scrubber is curing, so don't wait for eviction.
                    let _ = self.pool.flush_page(id);
                    self.state.lock().stats.repairs += 1;
                    report.repairs += 1;
                    if let Some(o) = self.obs.get() {
                        let took = self.clock.now() - repair_started;
                        o.emit(EventKind::RepairOk, id.0, took.as_nanos());
                    }
                }
                RepairOutcome::Resident { .. } | RepairOutcome::Busy => {
                    // The foreground fetched the page meanwhile — and
                    // Figure 8 verified/repaired it on the way in.
                    self.state.lock().stats.repairs_deferred += 1;
                    report.repairs_deferred += 1;
                }
                RepairOutcome::Failed(reason) => self.record_escalation(report, id, reason),
            }
        }
    }

    /// Records a repair failure and walks Figure 1's escalation arrows.
    fn record_escalation(&self, report: &mut ScrubCycleReport, id: PageId, reason: String) {
        let mut class = FailureClass::SinglePage;
        let mut state = self.state.lock();
        state.stats.repair_failures += 1;
        while let Some(next) = class.escalates_to(self.single_device_node) {
            match next {
                FailureClass::Media => state.stats.escalations_media += 1,
                FailureClass::System => state.stats.escalations_system += 1,
                _ => {}
            }
            class = next;
        }
        let escalation = ScrubEscalation {
            page: id,
            escalated_to: class,
            reason,
        };
        state.escalated.push(escalation.clone());
        drop(state);
        if let Some(o) = self.obs.get() {
            let code = match class {
                FailureClass::System => spf_obs::failure_class::SYSTEM,
                _ => spf_obs::failure_class::MEDIA,
            };
            o.emit(EventKind::Escalation, id.0, code);
            let detector = report
                .findings
                .iter()
                .find(|f| f.page == id)
                .map_or("unknown", |f| f.detector.obs_name());
            o.ledger().record_escalation(spf_obs::EscalationRecord {
                page_id: id.0,
                detector,
                escalated_to: spf_obs::failure_class::name(code),
                at: self.clock.now(),
                trace: o.drain_trace(),
            });
        }
        report.escalations.push(escalation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_buffer::BufferPoolConfig;
    use spf_storage::{CorruptionMode, FaultSpec, PageType, DEFAULT_PAGE_SIZE};
    use spf_util::IoCostModel;
    use spf_wal::{LogManager, Lsn};

    const PAGES: u64 = 16;

    struct Fixture {
        device: Device,
        pool: BufferPool,
        pri: Arc<PageRecoveryIndex>,
    }

    fn fixture(cost: IoCostModel) -> Fixture {
        let clock = Arc::new(SimClock::new());
        let device = Device::Mem(spf_storage::MemDevice::new(
            DEFAULT_PAGE_SIZE,
            PAGES,
            clock,
            cost,
            7,
        ));
        for i in 0..PAGES {
            let mut p = Page::new_formatted(DEFAULT_PAGE_SIZE, PageId(i), PageType::Meta);
            p.set_page_lsn(10);
            p.finalize_checksum();
            device.raw_overwrite(PageId(i), p.as_bytes());
        }
        let pool = BufferPool::new(
            BufferPoolConfig { frames: 8 },
            Arc::new(device.clone()),
            LogManager::for_testing(),
        );
        Fixture {
            device,
            pool,
            pri: Arc::new(PageRecoveryIndex::new()),
        }
    }

    /// A repairer standing in for single-page recovery: clears the
    /// armed fault (the firmware-remap step) and returns a known-good
    /// image, like the real recoverer, without needing a log.
    struct RemapRecoverer {
        device: Device,
        refuse: bool,
    }

    impl PageRecoverer for RemapRecoverer {
        fn recover(&self, id: PageId) -> RecoverOutcome {
            if self.refuse {
                return RecoverOutcome::Escalate(format!("no backup for {id}"));
            }
            self.device.injector().clear(id);
            let mut p = Page::new_formatted(DEFAULT_PAGE_SIZE, id, PageType::Meta);
            p.set_page_lsn(10);
            p.finalize_checksum();
            RecoverOutcome::Recovered(p)
        }
    }

    fn scrubber(fx: &Fixture, config: ScrubConfig, refuse: bool) -> Scrubber {
        Scrubber::new(
            config,
            false,
            fx.device.clone(),
            fx.pool.clone(),
            Arc::clone(&fx.pri),
            Some(Arc::new(RemapRecoverer {
                device: fx.device.clone(),
                refuse,
            })),
            Arc::new(FixedExtent(PAGES)),
        )
    }

    #[test]
    fn clean_sweep_finds_nothing_and_counts() {
        let fx = fixture(IoCostModel::free());
        let scrub = scrubber(&fx, ScrubConfig::unthrottled(), false);
        let report = scrub.run_cycle();
        assert_eq!(report.pages_scanned, PAGES);
        assert!(report.findings.is_empty());
        let stats = scrub.stats();
        assert_eq!(stats.cycles_completed, 1);
        assert_eq!(stats.findings_total(), 0);
        assert_eq!(fx.device.stats().scrub_reads, PAGES);
    }

    #[test]
    fn rate_limit_charges_idle_time_to_the_sim_clock() {
        let fx = fixture(IoCostModel::free());
        let config = ScrubConfig {
            enabled: true,
            pages_per_tick: 4,
            tick_idle: SimDuration::from_millis(10),
        };
        let scrub = scrubber(&fx, config, false);
        let t0 = fx.device.clock().now();
        scrub.run_cycle();
        let elapsed = fx.device.clock().now() - t0;
        // 16 pages at 4/tick = 4 ticks × 10 ms.
        assert_eq!(elapsed, SimDuration::from_millis(40));
    }

    #[test]
    fn governed_pacing_replaces_the_tick_loop_at_the_same_rate() {
        let fx = fixture(IoCostModel::free());
        let config = ScrubConfig {
            enabled: true,
            pages_per_tick: 4,
            tick_idle: SimDuration::from_millis(10),
        };
        let scrub = scrubber(&fx, config, false);
        let gov = Arc::new(IoGovernor::new(
            spf_prefetch::GovernorConfig::from_scrub(config.pages_per_tick, config.tick_idle),
            Arc::clone(fx.device.clock()),
        ));
        scrub.set_governor(Arc::clone(&gov));
        let t0 = fx.device.clock().now();
        scrub.run_cycle();
        let elapsed = fx.device.clock().now() - t0;
        // Same budget (400 pages/s), smoother shape: the first tick's
        // worth rides the burst, the remaining 12 pages wait 2.5 ms
        // each = 30 ms — never more than the legacy loop's 40 ms.
        assert_eq!(elapsed, SimDuration::from_micros(30_000));
        assert_eq!(gov.stats().granted_scrub, PAGES);
        assert!(gov.stats().throttle_waits > 0);
    }

    #[test]
    fn cold_fault_detected_and_repaired() {
        let fx = fixture(IoCostModel::free());
        fx.device.inject_fault(
            PageId(3),
            FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 6 }),
        );
        let scrub = scrubber(&fx, ScrubConfig::unthrottled(), false);
        let report = scrub.run_cycle();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].page, PageId(3));
        assert_eq!(report.findings[0].detector, DetectorClass::Checksum);
        assert_eq!(report.repairs, 1);
        assert!(fx.device.injector().faulted_pages().is_empty());
        // The device image was re-persisted and now verifies.
        let image = Page::from_bytes(fx.device.raw_image(PageId(3)));
        assert_eq!(image.verify(PageId(3)), Ok(()));
        // Next sweep is clean again.
        let report = scrub.run_cycle();
        assert!(report.findings.is_empty());
        assert_eq!(scrub.stats().repairs, 1);
    }

    #[test]
    fn stale_lsn_detected_via_pri_snapshot() {
        let fx = fixture(IoCostModel::free());
        // PRI says page 5 was written back at LSN 50; device holds 10.
        fx.pri
            .set_backup(PageId(5), spf_wal::BackupRef::None, Lsn(1));
        fx.pri.set_latest_lsn(PageId(5), Lsn(50));
        let scrub = scrubber(&fx, ScrubConfig::unthrottled(), false);
        let report = scrub.run_cycle();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].detector, DetectorClass::StaleLsn);
        assert_eq!(scrub.stats().found_stale_lsn, 1);
    }

    #[test]
    fn dirty_resident_pages_are_verified_in_place_not_scanned() {
        let fx = fixture(IoCostModel::free());
        {
            let mut g = fx.pool.fetch_mut(PageId(2)).unwrap();
            g.mark_dirty(Lsn(99));
        }
        // Even with a fault armed, the dirty page must not be judged
        // (or repaired) against its device image.
        fx.device.inject_fault(
            PageId(2),
            FaultSpec::SilentCorruption(CorruptionMode::ZeroPage),
        );
        let scrub = scrubber(&fx, ScrubConfig::unthrottled(), false);
        let report = scrub.run_cycle();
        assert_eq!(report.verified_in_pool, 1);
        assert_eq!(report.pages_scanned, PAGES - 1);
        assert!(report.findings.is_empty());
        assert_eq!(scrub.stats().verified_in_pool, 1);
    }

    #[test]
    fn hard_error_finding_and_refused_repair_escalates() {
        let fx = fixture(IoCostModel::free());
        fx.device.inject_fault(PageId(7), FaultSpec::HardReadError);
        let scrub = scrubber(&fx, ScrubConfig::unthrottled(), true);
        let report = scrub.run_cycle();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].detector, DetectorClass::HardError);
        assert_eq!(report.repairs, 0);
        assert_eq!(report.escalations.len(), 1);
        assert_eq!(report.escalations[0].escalated_to, FailureClass::Media);
        let stats = scrub.stats();
        assert_eq!(stats.repair_failures, 1);
        assert_eq!(stats.escalations_media, 1);
        assert_eq!(stats.escalations_system, 0);
        assert_eq!(scrub.escalated().len(), 1);
    }

    #[test]
    fn single_device_node_escalates_to_system() {
        let fx = fixture(IoCostModel::free());
        fx.device.inject_fault(PageId(1), FaultSpec::HardReadError);
        let scrub = Scrubber::new(
            ScrubConfig::unthrottled(),
            true,
            fx.device.clone(),
            fx.pool.clone(),
            Arc::clone(&fx.pri),
            None, // no recoverer at all
            Arc::new(FixedExtent(PAGES)),
        );
        let report = scrub.run_cycle();
        assert_eq!(report.escalations.len(), 1);
        assert_eq!(report.escalations[0].escalated_to, FailureClass::System);
        let stats = scrub.stats();
        assert_eq!(stats.escalations_media, 1, "passed through media");
        assert_eq!(stats.escalations_system, 1);
    }

    #[test]
    fn stop_request_interrupts_background_cycles_only() {
        let fx = fixture(IoCostModel::free());
        let scrub = scrubber(&fx, ScrubConfig::unthrottled(), false);
        scrub.request_stop();
        let report = scrub.run_cycle_interruptible();
        assert_eq!(report.pages_scanned, 0);
        assert_eq!(
            scrub.stats().cycles_completed,
            0,
            "interrupted, not completed"
        );
        // An explicit one-shot sweep ignores (and must not clear) a
        // pending stop.
        scrub.run_cycle();
        assert_eq!(scrub.stats().cycles_completed, 1);
        assert!(scrub.stop_requested(), "run_cycle must not clear the flag");
        scrub.clear_stop();
        scrub.run_cycle_interruptible();
        assert_eq!(scrub.stats().cycles_completed, 2);
    }

    #[test]
    fn refused_repair_never_retires_a_good_clean_copy() {
        let fx = fixture(IoCostModel::free());
        // Page 5 resident clean: the pool serves good, verified bytes.
        {
            let _g = fx.pool.fetch(PageId(5)).unwrap();
        }
        assert_eq!(fx.pool.probe(PageId(5)), Residency::Clean);
        // The device image looks stale to the ladder, and the repairer
        // refuses (no backup).
        fx.pri
            .set_backup(PageId(5), spf_wal::BackupRef::None, Lsn(1));
        fx.pri.set_latest_lsn(PageId(5), Lsn(50));
        let scrub = scrubber(&fx, ScrubConfig::unthrottled(), true);
        let report = scrub.run_cycle();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.escalations.len(), 1);
        assert_eq!(
            fx.pool.probe(PageId(5)),
            Residency::Clean,
            "the only good copy must keep serving reads after a refused repair"
        );
    }

    #[test]
    fn mean_time_to_detect_uses_previous_visit() {
        let fx = fixture(IoCostModel::free());
        let scrub = scrubber(&fx, ScrubConfig::unthrottled(), false);
        scrub.run_cycle(); // clean baseline visit at t0
        fx.device.clock().advance(SimDuration::from_secs(2));
        fx.device.inject_fault(
            PageId(4),
            FaultSpec::SilentCorruption(CorruptionMode::ZeroPage),
        );
        scrub.run_cycle();
        let mttd = scrub.stats().mean_time_to_detect().unwrap();
        assert_eq!(mttd, SimDuration::from_secs(2));
    }
}
