//! Scrubber configuration.

use spf_util::SimDuration;

/// How the background scrubber paces itself.
///
/// The scrubber charges every page it reads against the shared
/// [`spf_util::SimClock`] (as sequential transfer), and additionally
/// sleeps the simulated clock for [`tick_idle`](ScrubConfig::tick_idle)
/// after every [`pages_per_tick`](ScrubConfig::pages_per_tick) pages —
/// the classic token-bucket rate limit that leaves device bandwidth to
/// foreground work (the foreground/background isolation concern GrASP
/// raises for transactional workloads). `pages_per_tick / tick_idle` is
/// therefore the scrub I/O budget in pages per simulated second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubConfig {
    /// Whether the engine wires up a scrubber at all. With `false`,
    /// `scrub_now` / `start_scrubber` on the façade become errors /
    /// no-ops (the seed behaviour: failures are found only when a
    /// foreground read happens to hit them).
    pub enabled: bool,
    /// Pages verified per tick before the scrubber pauses.
    pub pages_per_tick: usize,
    /// Simulated pause charged to the shared clock after each tick.
    pub tick_idle: SimDuration,
}

impl ScrubConfig {
    /// Scrubbing available, paced at 64 pages per simulated millisecond.
    #[must_use]
    pub const fn default_on() -> Self {
        Self {
            enabled: true,
            pages_per_tick: 64,
            tick_idle: SimDuration::from_millis(1),
        }
    }

    /// No scrubber (the traditional engine).
    #[must_use]
    pub const fn disabled() -> Self {
        Self {
            enabled: false,
            pages_per_tick: 0,
            tick_idle: SimDuration::ZERO,
        }
    }

    /// An unthrottled configuration for benchmarks: the hot no-fault
    /// verification path with no idle charges.
    #[must_use]
    pub const fn unthrottled() -> Self {
        Self {
            enabled: true,
            pages_per_tick: usize::MAX,
            tick_idle: SimDuration::ZERO,
        }
    }
}

impl Default for ScrubConfig {
    fn default() -> Self {
        Self::default_on()
    }
}
