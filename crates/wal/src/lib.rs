//! # spf-wal
//!
//! Write-ahead log for the single-page-failure workspace (Graefe & Kuno,
//! VLDB 2012).
//!
//! The paper's recovery technique leans on two log-chain optimizations it
//! credits to "today's efficient implementations of logging and recovery"
//! (Sections 5.1.1, 5.1.4):
//!
//! * the **per-transaction log chain** — each record points to the prior
//!   record of the same transaction; drives transaction rollback;
//! * the **per-page log chain** — each record points to the prior record
//!   for the *same data page*; drives single-page recovery (and doubles as
//!   a redo-order cross-check during system recovery: the chain pointer of
//!   a record must equal the PageLSN found in the page, Section 5.1.4).
//!
//! On top of the usual record taxonomy (begin/commit/abort, physiological
//! page updates, CLRs, checkpoints) this log carries the paper's new
//! record type: the **page-recovery-index update** written after every
//! completed page write (Figure 11), which "subsumes the value of logging
//! completed writes" (Section 5.2.4).
//!
//! The log itself is a single virtual byte sequence. LSNs are byte
//! offsets, as in ARIES. The in-memory tail (the log buffer) becomes
//! durable on [`LogManager::force`]; a simulated crash discards the
//! unforced tail. "All discussions of recovery techniques assume that the
//! recovery log is on stable storage" (Section 5) — the stable prefix here
//! is exactly that assumption, while I/O costs of appends, forces, and
//! recovery-time reads are charged to the shared simulated clock.
//!
//! Because every layer funnels through the log, its hot paths are built
//! to scale with threads: appends reserve their byte range with one
//! atomic fetch-add and copy into a segmented buffer without an
//! exclusive lock, and forces combine through a group-commit protocol so
//! N concurrent committers pay ~1 flush. See the [`manager`] module docs
//! for the full scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod group_force;
mod segment;

pub mod manager;
pub mod record;
pub mod sink;

pub use manager::{LogError, LogManager, LogScanner, LogStats};
pub use record::{BackupRef, CompressedPageImage, LogPayload, LogRecord, Lsn, PageOp, TxId};
pub use sink::{LogSink, WalFiles};
