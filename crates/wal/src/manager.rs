//! The log manager: append, force, and the read paths recovery needs.
//!
//! The log is a single virtual byte sequence. [`LogManager::append`]
//! serializes a record into the volatile log buffer and returns its LSN
//! (byte offset); [`LogManager::force`] makes everything appended so far
//! durable. A simulated crash ([`LogManager::crash`]) discards the
//! unforced tail — exactly the paper's model where a system transaction's
//! unforced commit record can be lost without data loss (Section 5.1.5).
//!
//! # Concurrency scheme
//!
//! The log is the busiest shared structure in the system — the paper's
//! machinery (per-page log chains, PRI maintenance records after every
//! page write, forced commits) funnels every layer through it — so the
//! hot paths are built to scale with threads instead of serializing:
//!
//! * **Appends** reserve their byte range with one atomic `fetch_add`
//!   and copy the encoded record directly into a fixed-size segment of
//!   the segmented log buffer (`segment.rs`) with no exclusive lock
//!   held. Per-segment filled watermarks (release-ordered) tell the
//!   force path how far the buffer is contiguously complete.
//! * **Forces** go through a combined-force protocol
//!   (`group_force.rs`): a committer publishes its target LSN and
//!   either leads one flush for every target published so far (charging
//!   the simulated clock one sequential write for the whole batch) or
//!   waits for a leader whose flush covers it — group commit. N
//!   concurrent committers pay ~1 force instead of N.
//! * Statistics are plain atomics; only the rare control state
//!   (checkpoint list, archive watermark, truncation) sits behind a
//!   mutex, and no I/O or flush ever happens while it is held.
//!
//! Read paths serve the three consumers in the paper:
//!
//! * [`LogManager::read_record`] — one record by LSN, charged as a random
//!   I/O: this is what single-page recovery's backward chain walk pays
//!   ("dozens of I/Os in order to read the required log records",
//!   Section 6);
//! * [`LogManager::scan_from`] — forward sequential scan, what system
//!   recovery's analysis/redo passes and media recovery pay;
//! * [`LogManager::scan_backward_chain`] — the per-page chain walk,
//!   returning records newest-first (callers push them on a LIFO stack,
//!   Figure 10).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use spf_obs::{ActiveSpan, EventKind, Obs, Span, SpanKind, TraceCtx, WaitClass};

use spf_storage::PageId;
use spf_util::{IoCostModel, IoKind, SimClock};

use crate::group_force::{Forced, GroupForce};
use crate::record::{LogPayload, LogRecord, Lsn, TxId};
use crate::segment::SegmentedBuffer;
use crate::sink::LogSink;

/// Errors from log reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The LSN does not address a durable record.
    OutOfBounds {
        /// The offending LSN.
        lsn: Lsn,
        /// One past the last durable byte.
        durable_end: Lsn,
    },
    /// The LSN addresses a record that was valid once but has been
    /// truncated away ([`LogManager::truncate_until`]). Its history now
    /// lives only in the log archive; consumers holding an archive handle
    /// should retry there.
    Truncated {
        /// The offending LSN.
        lsn: Lsn,
        /// First LSN still held by the log.
        truncate_point: Lsn,
    },
    /// The record at this LSN failed its checksum or could not be parsed.
    ///
    /// By the paper's stable-storage assumption this never happens to a
    /// correctly-written log; it indicates a bug or an unsupported failure.
    Corrupt {
        /// The offending LSN.
        lsn: Lsn,
        /// Parser diagnostics.
        detail: String,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::OutOfBounds { lsn, durable_end } => {
                write!(f, "{lsn} out of bounds (durable log ends at {durable_end})")
            }
            LogError::Truncated {
                lsn,
                truncate_point,
            } => write!(
                f,
                "{lsn} truncated from the log (tail starts at {truncate_point}); \
                 consult the log archive"
            ),
            LogError::Corrupt { lsn, detail } => write!(f, "corrupt log record at {lsn}: {detail}"),
        }
    }
}

impl std::error::Error for LogError {}

/// Counters the experiment harness reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Records appended.
    pub records_appended: u64,
    /// Bytes appended.
    pub bytes_appended: u64,
    /// Flushes of the log buffer to stable storage. Under group commit
    /// one flush may satisfy many concurrent force requests, so with N
    /// concurrent committers this stays below the commit count.
    pub forces: u64,
    /// Flushes that covered more than the leading request alone — true
    /// group-commit batches.
    pub force_batches: u64,
    /// Force requests satisfied by another thread's flush (they waited
    /// instead of flushing themselves).
    pub force_waiters_absorbed: u64,
    /// Total bytes made durable by all flushes. `bytes_forced /
    /// forces` — see [`LogStats::bytes_per_force`] — is the average
    /// flush size; group commit drives it up under concurrency.
    pub bytes_forced: u64,
    /// Records read through the random-access path.
    pub random_record_reads: u64,
    /// Bytes scanned through the sequential path.
    pub bytes_scanned: u64,
    /// Successful [`LogManager::truncate_until`] calls that dropped bytes.
    pub truncations: u64,
    /// Bytes reclaimed by truncation (they live on in the archive).
    pub bytes_truncated: u64,
    /// Appends broken down by payload kind, keyed by
    /// [`LogPayload::kind_name`] order — see [`LogStats::KIND_NAMES`].
    pub appends_by_kind: [u64; 11],
}

impl LogStats {
    /// Names corresponding to the `appends_by_kind` slots.
    pub const KIND_NAMES: [&'static str; 11] = [
        "tx-begin",
        "tx-commit",
        "tx-abort",
        "update",
        "clr",
        "page-format",
        "full-page-image",
        "pri-update",
        "backup-taken",
        "checkpoint-begin",
        "checkpoint-end",
    ];

    /// Count of appended records of the given payload kind.
    #[must_use]
    pub fn appends_of(&self, kind_name: &str) -> u64 {
        Self::KIND_NAMES
            .iter()
            .position(|&n| n == kind_name)
            .map_or(0, |i| self.appends_by_kind[i])
    }

    /// Average bytes made durable per flush (0 if nothing was flushed).
    /// Group commit shows up as this growing with committer concurrency.
    #[must_use]
    pub fn bytes_per_force(&self) -> f64 {
        if self.forces == 0 {
            0.0
        } else {
            self.bytes_forced as f64 / self.forces as f64
        }
    }
}

impl spf_obs::Observable for LogStats {
    fn observe(&self, g: &mut spf_obs::GroupBuilder) {
        g.counter("records_appended", self.records_appended)
            .counter("bytes_appended", self.bytes_appended)
            .counter("forces", self.forces)
            .counter("force_batches", self.force_batches)
            .counter("force_waiters_absorbed", self.force_waiters_absorbed)
            .counter("bytes_forced", self.bytes_forced)
            .counter("random_record_reads", self.random_record_reads)
            .counter("bytes_scanned", self.bytes_scanned)
            .counter("truncations", self.truncations)
            .counter("bytes_truncated", self.bytes_truncated);
        for (name, n) in Self::KIND_NAMES.iter().zip(self.appends_by_kind) {
            g.counter(&format!("appends_by_kind_{}", name.replace('-', "_")), n);
        }
    }
}

/// Slot of `payload` in [`LogStats::KIND_NAMES`] order. A direct match
/// (not a name scan): this runs on every append.
fn kind_index(payload: &LogPayload) -> usize {
    match payload {
        LogPayload::TxBegin { .. } => 0,
        LogPayload::TxCommit { .. } => 1,
        LogPayload::TxAbort => 2,
        LogPayload::Update { .. } => 3,
        LogPayload::Clr { .. } => 4,
        LogPayload::PageFormat { .. } => 5,
        LogPayload::FullPageImage { .. } => 6,
        LogPayload::PriUpdate { .. } => 7,
        LogPayload::BackupTaken { .. } => 8,
        LogPayload::CheckpointBegin { .. } => 9,
        LogPayload::CheckpointEnd => 10,
    }
}

/// Lock-free statistics cells; snapshotted into [`LogStats`].
///
/// The append path pays exactly **one** counter update (its kind slot):
/// `records_appended` is the sum of the kind slots, and `bytes_appended`
/// is derived from the reservation counter plus the bytes crashes
/// discarded (counted once per crash, like the old single-mutex log
/// which also never un-counted discarded appends).
#[derive(Default)]
struct Counters {
    /// Appended-then-crash-discarded bytes (still "appended" in the
    /// cumulative sense `bytes_appended` has always had).
    bytes_discarded: AtomicU64,
    forces: AtomicU64,
    force_batches: AtomicU64,
    force_waiters_absorbed: AtomicU64,
    bytes_forced: AtomicU64,
    random_record_reads: AtomicU64,
    bytes_scanned: AtomicU64,
    truncations: AtomicU64,
    bytes_truncated: AtomicU64,
    appends_by_kind: [AtomicU64; 11],
}

impl Counters {
    /// `live_appended` is the byte count currently in the virtual log
    /// above the header (`reserved - FIRST`).
    fn snapshot(&self, live_appended: u64) -> LogStats {
        let mut appends_by_kind = [0u64; 11];
        for (out, cell) in appends_by_kind.iter_mut().zip(&self.appends_by_kind) {
            *out = cell.load(Ordering::Relaxed);
        }
        LogStats {
            records_appended: appends_by_kind.iter().sum(),
            bytes_appended: live_appended + self.bytes_discarded.load(Ordering::Relaxed),
            forces: self.forces.load(Ordering::Relaxed),
            force_batches: self.force_batches.load(Ordering::Relaxed),
            force_waiters_absorbed: self.force_waiters_absorbed.load(Ordering::Relaxed),
            bytes_forced: self.bytes_forced.load(Ordering::Relaxed),
            random_record_reads: self.random_record_reads.load(Ordering::Relaxed),
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            bytes_truncated: self.bytes_truncated.load(Ordering::Relaxed),
            appends_by_kind,
        }
    }
}

/// Rare, cold control state: everything appends and forces do *not*
/// need on their hot paths.
struct Control {
    /// LSNs of every checkpoint-begin record appended, ascending (the
    /// newest durable one plays the role of the "master record" a real
    /// system keeps in a known location). Truncation drops leading
    /// entries; a crash drops unforced trailing ones.
    checkpoints: Vec<Lsn>,
    /// How many leading `checkpoints` entries are known durable — the
    /// cursor that makes [`LogManager::last_checkpoint`] O(1).
    durable_ckpts: usize,
    /// Exclusive upper bound of the WAL prefix captured by the log
    /// archive. Truncation never passes it.
    archive_watermark: Lsn,
}

impl Control {
    /// Advances the durable-checkpoint cursor over newly durable entries.
    fn advance_ckpt_cursor(&mut self, durable: u64) {
        while self.durable_ckpts < self.checkpoints.len()
            && self.checkpoints[self.durable_ckpts].0 < durable
        {
            self.durable_ckpts += 1;
        }
    }
}

struct Inner {
    /// The segmented log buffer holding the virtual range
    /// `[base, reserved)`; `[base, durable)` mirrors stable storage, the
    /// rest is the volatile log buffer.
    buf: SegmentedBuffer,
    /// One past the last durable byte (a *virtual* offset, like an LSN).
    /// Written only by force leaders, release-ordered.
    durable: AtomicU64,
    force: GroupForce,
    stats: Counters,
    control: Mutex<Control>,
    /// Durable backing for forced bytes. `None` (the simulated default)
    /// means "durable" is an accounting fiction that survives
    /// [`LogManager::crash`] but not a real process kill; with a sink,
    /// the force leader writes and syncs it before publishing `durable`.
    sink: Mutex<Option<Arc<dyn LogSink>>>,
    /// Observability attach point ([`LogManager::attach_obs`]); unset
    /// costs the force leader one load and nothing else.
    obs: OnceLock<Arc<Obs>>,
}

/// The write-ahead log.
///
/// Cheap to clone; all clones share the same log.
#[derive(Clone)]
pub struct LogManager {
    inner: Arc<Inner>,
    clock: Arc<SimClock>,
    cost: IoCostModel,
}

impl std::fmt::Debug for LogManager {
    /// Never blocks: the hot-path fields are atomics, and the control
    /// state is only peeked at with `try_lock` — formatting a shared log
    /// from a panic handler or a log line while another thread holds the
    /// control mutex must not deadlock.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("LogManager");
        s.field("len", &self.total_bytes())
            .field("durable_len", &self.inner.durable.load(Ordering::Relaxed));
        match self.inner.control.try_lock() {
            Some(control) => {
                let n = control.checkpoints.len();
                s.field("checkpoints", &n);
            }
            None => {
                s.field("checkpoints", &"<locked>");
            }
        }
        s.finish()
    }
}

impl LogManager {
    /// Creates an empty log charging `cost` against `clock`.
    #[must_use]
    pub fn new(clock: Arc<SimClock>, cost: IoCostModel) -> Self {
        Self {
            inner: Arc::new(Inner {
                // Reserve the header region so LSN 0 is never a record.
                buf: SegmentedBuffer::new(Lsn::FIRST.0),
                durable: AtomicU64::new(Lsn::FIRST.0),
                force: GroupForce::new(Lsn::FIRST.0),
                stats: Counters::default(),
                control: Mutex::new(Control {
                    checkpoints: Vec::new(),
                    durable_ckpts: 0,
                    archive_watermark: Lsn::NULL,
                }),
                sink: Mutex::new(None),
                obs: OnceLock::new(),
            }),
            clock,
            cost,
        }
    }

    /// Rebuilds a log from the bytes a [`LogSink`] persisted: `base` is
    /// the virtual offset of `bytes[0]` (the first segment file's
    /// name), as returned by [`crate::WalFiles::open`].
    ///
    /// The stored tail may be torn — a kill can land between the sink's
    /// `append` and its `sync` — so the constructor walks the records
    /// forward and accepts the longest prefix that parses (checksummed
    /// frames make a torn record detectable). Everything behind the
    /// tear becomes the durable log, its checkpoint-begin records
    /// re-indexed; the tear itself and anything after are discarded,
    /// exactly like [`LogManager::crash`] discards the unforced tail.
    /// Returns the manager and the valid end — the caller should
    /// physically trim the sink to it before re-attaching it with
    /// [`set_sink`](LogManager::set_sink).
    ///
    /// The archive watermark restarts at `NULL`; the caller restores it
    /// from its own metadata ([`set_archive_watermark`]
    /// (LogManager::set_archive_watermark)).
    #[must_use]
    pub fn restore(
        clock: Arc<SimClock>,
        cost: IoCostModel,
        base: u64,
        bytes: &[u8],
    ) -> (Self, Lsn) {
        let buf = SegmentedBuffer::new(base);
        if !bytes.is_empty() {
            let at = buf.reserve(bytes.len() as u64);
            debug_assert_eq!(at, base);
            buf.write(at, bytes);
        }
        // Forward walk: collect checkpoints, stop at the first byte
        // range that does not parse as a record.
        let mut checkpoints = Vec::new();
        let mut off = 0usize;
        while off < bytes.len() {
            match LogRecord::decode(&bytes[off..]) {
                Ok((record, len)) => {
                    if matches!(record.payload, LogPayload::CheckpointBegin { .. }) {
                        checkpoints.push(Lsn(base + off as u64));
                    }
                    off += len;
                }
                Err(_) => break,
            }
        }
        let valid_end = base + off as u64;
        if valid_end < base + bytes.len() as u64 {
            buf.crash_to(valid_end);
        }
        let durable_ckpts = checkpoints.len();
        let mgr = Self {
            inner: Arc::new(Inner {
                buf,
                durable: AtomicU64::new(valid_end),
                force: GroupForce::new(valid_end),
                stats: Counters::default(),
                control: Mutex::new(Control {
                    checkpoints,
                    durable_ckpts,
                    archive_watermark: Lsn::NULL,
                }),
                sink: Mutex::new(None),
                obs: OnceLock::new(),
            }),
            clock,
            cost,
        };
        (mgr, Lsn(valid_end))
    }

    /// Attaches the observability handle. The force leader then times
    /// each flush into the `log_force` span histogram and emits a
    /// [`EventKind::LogForce`] flight-recorder event per flush. At most
    /// one handle per log; later calls are ignored.
    pub fn attach_obs(&self, obs: Arc<Obs>) {
        let _ = self.inner.obs.set(obs);
    }

    /// Attaches the durable sink. From now on every force writes and
    /// syncs the flushed range through it before the force returns.
    /// Intended to be called once, right after construction or
    /// [`restore`](LogManager::restore) — bytes forced earlier are not
    /// retroactively written.
    pub fn set_sink(&self, sink: Arc<dyn LogSink>) {
        *self.inner.sink.lock() = Some(sink);
    }

    /// Creates a log with free I/O for unit tests.
    #[must_use]
    pub fn for_testing() -> Self {
        Self::new(Arc::new(SimClock::new()), IoCostModel::free())
    }

    /// The shared simulated clock.
    #[must_use]
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// One past the last byte every completed append has fully written —
    /// the read horizon. Equals [`end_lsn`](LogManager::end_lsn) except
    /// while a concurrent append is mid-copy.
    fn complete_end(&self) -> u64 {
        self.inner
            .buf
            .complete_end(self.inner.durable.load(Ordering::Acquire))
    }

    /// Appends `record` to the log buffer and returns its LSN.
    ///
    /// The record is *not* durable until [`force`](LogManager::force); the
    /// write-ahead discipline (force before page write, force on user
    /// commit) is the callers' responsibility, as in ARIES.
    ///
    /// Concurrent appends do not serialize: each reserves its byte range
    /// with one atomic fetch-add and copies into the segmented buffer in
    /// parallel. LSNs are therefore unique and densely packed — every
    /// byte between two records belongs to exactly one record.
    pub fn append(&self, record: &LogRecord) -> Lsn {
        let encoded = record.encode();
        let len = encoded.len() as u64;
        let lsn = self.inner.buf.reserve(len);
        self.inner.buf.write(lsn, &encoded);
        self.inner.stats.appends_by_kind[kind_index(&record.payload)]
            .fetch_add(1, Ordering::Relaxed);
        if matches!(record.payload, LogPayload::CheckpointBegin { .. }) {
            // Sorted insert: with racing appenders the reservation order
            // (LSN order) need not match arrival order here.
            let mut control = self.inner.control.lock();
            let pos = control.checkpoints.partition_point(|l| *l < Lsn(lsn));
            control.checkpoints.insert(pos, Lsn(lsn));
        }
        Lsn(lsn)
    }

    /// The combined-force protocol: publish `target`, then lead one
    /// flush for the whole batch of published targets or wait for a
    /// leader whose flush covers ours. The flush waits until the buffer
    /// is contiguously complete through its goal (concurrent appenders
    /// finish their short copies), charges the simulated clock one
    /// sequential write for the batch, and advances the durable
    /// boundary.
    fn combined_force(&self, target: u64, ctx: TraceCtx) -> Lsn {
        let inner = &self.inner;
        let obs = inner.obs.get();
        // Speculative follower span: recorded (with a link to the
        // covering leader's LogForce span) only if this request is
        // absorbed by another thread's flush; cancelled otherwise.
        let mut wait_span = match obs {
            Some(o) => o.trace_span(ctx, SpanKind::ForceWait, WaitClass::ForceWait, target),
            None => ActiveSpan::inert(),
        };
        let outcome = inner.force.force_to(target, |from, to, batched| {
            let _span = obs.map_or_else(spf_obs::SpanGuard::inert, |o| o.span(Span::LogForce));
            // Leader attribution: record a LogForce trace span even when
            // this committer itself is unsampled (an orphan in trace 0),
            // so absorbed waiters can always link to the batch that made
            // them durable.
            let tspan = match obs {
                Some(o) if ctx.sampled() => {
                    o.tracer()
                        .begin(ctx, SpanKind::LogForce, WaitClass::ForceWait, to)
                }
                Some(o) => o
                    .tracer()
                    .begin_orphan(SpanKind::LogForce, WaitClass::ForceWait, to),
                None => ActiveSpan::inert(),
            };
            while inner.buf.complete_end(from) < to {
                std::thread::yield_now();
            }
            // Write-ahead for real: the sink must acknowledge the bytes
            // before `durable` moves, or a commit could be acknowledged
            // on the strength of bytes a kill would erase. A sink error
            // is fatal for the same reason — there is no honest way to
            // return from a force that did not persist.
            let sink = inner.sink.lock().clone();
            if let Some(sink) = sink {
                let bytes = inner
                    .buf
                    .copy(from, to)
                    .expect("forced range is retained in the buffer");
                sink.append(from, &bytes)
                    .and_then(|()| sink.sync())
                    .expect("WAL sink failed; cannot acknowledge durability");
            }
            self.clock.advance(
                self.cost
                    .cost(IoKind::SequentialWrite, (to - from) as usize),
            );
            inner.durable.store(to, Ordering::Release);
            inner.control.lock().advance_ckpt_cursor(to);
            inner.stats.forces.fetch_add(1, Ordering::Relaxed);
            inner
                .stats
                .bytes_forced
                .fetch_add(to - from, Ordering::Relaxed);
            if batched {
                inner.stats.force_batches.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(o) = obs {
                o.emit(EventKind::LogForce, to, to - from);
            }
            tspan.id() // attribution token for absorbed waiters
        });
        match outcome {
            Forced::Absorbed { token, .. } => {
                inner
                    .stats
                    .force_waiters_absorbed
                    .fetch_add(1, Ordering::Relaxed);
                wait_span.set_link(token);
                drop(wait_span); // records the follower's force wait
            }
            Forced::Noop(_) | Forced::Led(_) => wait_span.cancel(),
        }
        Lsn(outcome.durable())
    }

    /// Forces the log buffer to stable storage. Returns the durable end
    /// LSN. Concurrent forces combine: the batch is charged as **one**
    /// sequential write of all the flushed bytes.
    pub fn force(&self) -> Lsn {
        self.combined_force(self.inner.buf.end(), TraceCtx::NONE)
    }

    /// Forces the log **through** the record starting at `lsn` (the WAL
    /// rule before a page write: everything up to and including the
    /// record that set the page's PageLSN must be durable, but records
    /// appended later — e.g. other pages' PRI updates — need not be).
    /// No-op if that prefix is already durable. User commits take this
    /// path too, so commits and write-backs share the group-commit batch.
    pub fn force_through(&self, lsn: Lsn) -> Lsn {
        self.force_through_traced(lsn, TraceCtx::NONE)
    }

    /// [`LogManager::force_through`] carrying a sampled operation's
    /// trace context: the force wait (or led flush) is recorded as a
    /// span of that trace, with group-commit leader/follower
    /// attribution.
    pub fn force_through_traced(&self, lsn: Lsn, ctx: TraceCtx) -> Lsn {
        let durable = self.inner.durable.load(Ordering::Acquire);
        if !lsn.is_valid() || lsn.0 < durable {
            return Lsn(durable);
        }
        let end = self.inner.buf.end();
        let target = if lsn.0 >= end {
            // Beyond the appended log (defensive): force everything.
            end
        } else {
            match self.decode_at(lsn.0, end) {
                Ok((_, len)) => lsn.0 + len as u64,
                // Not a record boundary (defensive): force everything.
                Err(_) => end,
            }
        };
        self.combined_force(target, ctx)
    }

    /// One past the last durable byte.
    #[must_use]
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.inner.durable.load(Ordering::Acquire))
    }

    /// One past the last appended byte (durable or not).
    #[must_use]
    pub fn end_lsn(&self) -> Lsn {
        Lsn(self.inner.buf.end())
    }

    /// LSN of the most recent **durable** checkpoint-begin record, i.e.
    /// what the master record would point to after a crash.
    ///
    /// O(1): a cursor over the ascending checkpoint list is advanced as
    /// the durable boundary moves (on force), never scanned backward.
    #[must_use]
    pub fn last_checkpoint(&self) -> Lsn {
        let durable = self.inner.durable.load(Ordering::Acquire);
        let mut control = self.inner.control.lock();
        // The cursor is maintained by the force path; catching up here
        // too keeps the method correct even if a checkpoint append
        // published its entry after a force passed it (amortized O(1) —
        // each entry is crossed once, ever).
        control.advance_ckpt_cursor(durable);
        match control.durable_ckpts {
            0 => Lsn::NULL,
            n => control.checkpoints[n - 1],
        }
    }

    /// Simulates a system failure: the volatile log buffer is discarded.
    /// Returns the durable end LSN the restarted system will see. Must
    /// not race appends or forces — the crash owns the simulated system.
    pub fn crash(&self) -> Lsn {
        let mut control = self.inner.control.lock();
        let durable = self.inner.durable.load(Ordering::Acquire);
        let discarded = self.inner.buf.end().saturating_sub(durable);
        self.inner
            .stats
            .bytes_discarded
            .fetch_add(discarded, Ordering::Relaxed);
        self.inner.buf.crash_to(durable);
        self.inner.force.crash_reset();
        // Checkpoint records in the lost buffer never happened; every
        // retained entry is durable, so the O(1) cursor covers them all.
        control.checkpoints.retain(|l| l.0 < durable);
        control.durable_ckpts = control.checkpoints.len();
        // The archive only ever captured the durable prefix, so the
        // watermark survives a crash unchanged; clamp defensively.
        control.archive_watermark = control.archive_watermark.min(Lsn(durable));
        Lsn(durable)
    }

    /// First LSN still addressed by the log: [`Lsn::NULL`] while the log
    /// has never been truncated, else the cut point of the most recent
    /// [`truncate_until`](LogManager::truncate_until). Records below it
    /// must be fetched from the log archive.
    #[must_use]
    pub fn truncate_point(&self) -> Lsn {
        Lsn(self.inner.buf.base())
    }

    /// Exclusive upper bound of the WAL prefix the log archive has
    /// durably captured. Set by the archiver after each drain.
    #[must_use]
    pub fn archive_watermark(&self) -> Lsn {
        self.inner.control.lock().archive_watermark
    }

    /// Records that the archive now holds every page-relevant record
    /// below `lsn`. Monotone; clamped to the durable end (the archiver
    /// only ever reads the durable prefix).
    pub fn set_archive_watermark(&self, lsn: Lsn) {
        let durable = self.inner.durable.load(Ordering::Acquire);
        let mut control = self.inner.control.lock();
        let clamped = Lsn(lsn.0.min(durable));
        control.archive_watermark = control.archive_watermark.max(clamped);
    }

    /// Discards log bytes below `lsn`, reclaiming their memory (whole
    /// segments of the buffer are retired; the segment straddling the
    /// cut is freed once a later cut passes its end). The cut is clamped
    /// to the archive watermark and the durable end — nothing unarchived
    /// or unforced is ever dropped — and must land on a record boundary.
    /// Returns the bytes reclaimed (0 if nothing to drop).
    ///
    /// Callers are expected to pass a *safe* LSN, i.e. the minimum of the
    /// archive watermark, the last durable checkpoint, the buffer pool's
    /// oldest dirty-page recovery LSN, and the oldest active
    /// transaction's begin LSN (`Database::safe_truncation_lsn` computes
    /// exactly this); the clamps here only defend the log's own
    /// invariants.
    pub fn truncate_until(&self, lsn: Lsn) -> Result<u64, LogError> {
        let mut control = self.inner.control.lock();
        if !control.archive_watermark.is_valid() {
            return Ok(0); // nothing archived: nothing may be dropped
        }
        let durable = self.inner.durable.load(Ordering::Acquire);
        let cut = lsn.0.min(control.archive_watermark.0).min(durable);
        let base = self.inner.buf.base();
        if cut <= base {
            return Ok(0);
        }
        // The cut must be a record boundary (or the very end), or every
        // later read would land mid-record.
        let end = self.inner.buf.end();
        if cut < end {
            self.decode_at(cut, end).map_err(|e| {
                let detail = match e {
                    LogError::Corrupt { detail, .. } => detail,
                    other => other.to_string(),
                };
                LogError::Corrupt {
                    lsn: Lsn(cut),
                    detail: format!("truncation point is not a record boundary: {detail}"),
                }
            })?;
        }
        let dropped = cut - base;
        self.inner.buf.truncate_to(cut);
        // Release sink storage below the cut. Best effort: failing to
        // unlink an old segment wastes disk but loses nothing.
        if let Some(sink) = self.inner.sink.lock().clone() {
            let _ = sink.truncate_to(cut);
        }
        // Checkpoints below the cut are unreadable now; all of them were
        // durable (cut <= durable), so the cursor shifts with them.
        control.advance_ckpt_cursor(durable);
        let before = control.checkpoints.len();
        control.checkpoints.retain(|l| l.0 >= cut);
        control.durable_ckpts -= before - control.checkpoints.len();
        self.inner.stats.truncations.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .bytes_truncated
            .fetch_add(dropped, Ordering::Relaxed);
        Ok(dropped)
    }

    /// Decodes the complete record at virtual offset `off` (`off` must
    /// be below `limit`, which in turn must be at or below the complete
    /// end). One allocation-free probe read sized for typical records;
    /// only a record longer than the probe pays a second, exactly-sized
    /// heap copy.
    fn decode_at(&self, off: u64, limit: u64) -> Result<(LogRecord, usize), LogError> {
        /// Covers the fixed header plus the common update payloads.
        const PROBE_BYTES: usize = 192;
        let truncated = |base: u64| LogError::Truncated {
            lsn: Lsn(off),
            truncate_point: Lsn(base),
        };
        let corrupt = |detail: String| LogError::Corrupt {
            lsn: Lsn(off),
            detail,
        };
        let avail = ((limit - off).min(PROBE_BYTES as u64)) as usize;
        let mut probe = [0u8; PROBE_BYTES];
        self.inner
            .buf
            .copy_to(off, &mut probe[..avail])
            .map_err(truncated)?;
        if avail < 4 {
            return Err(corrupt("truncated record header".into()));
        }
        let framed = LogRecord::framed_len(probe[..4].try_into().expect("4 bytes")) as u64;
        let total = framed.min(limit - off);
        if total <= avail as u64 {
            return LogRecord::decode(&probe[..avail]).map_err(|e| corrupt(e.to_string()));
        }
        let bytes = self.inner.buf.copy(off, off + total).map_err(truncated)?;
        LogRecord::decode(&bytes).map_err(|e| corrupt(e.to_string()))
    }

    /// Reads the single record at `lsn`, charged as one random I/O (the
    /// cost single-page recovery pays per chain hop).
    pub fn read_record(&self, lsn: Lsn) -> Result<LogRecord, LogError> {
        self.read_record_at(lsn, true)
    }

    fn read_record_at(&self, lsn: Lsn, charge: bool) -> Result<LogRecord, LogError> {
        // Bounds come from the *reserved* end, not the complete
        // watermark: a reader always holds an LSN whose append has
        // returned (most importantly rollback re-reading its own chain),
        // so its bytes are complete even while unrelated appends are
        // still mid-copy below the watermark.
        let end = self.inner.buf.end();
        if !lsn.is_valid() || lsn.0 >= end || lsn < Lsn::FIRST {
            return Err(LogError::OutOfBounds {
                lsn,
                durable_end: Lsn(end),
            });
        }
        let base = self.inner.buf.base();
        if lsn.0 < base {
            return Err(LogError::Truncated {
                lsn,
                truncate_point: Lsn(base),
            });
        }
        if charge {
            // One random log I/O; body length is bounded by a page or so,
            // charge a nominal 4 KiB transfer.
            self.clock.advance(self.cost.cost(IoKind::RandomRead, 4096));
            self.inner
                .stats
                .random_record_reads
                .fetch_add(1, Ordering::Relaxed);
        }
        let (record, _len) = self.decode_at(lsn.0, end)?;
        Ok(record)
    }

    /// Forward sequential scan of `(lsn, record)` pairs starting at
    /// `start` (or the first record if `start` is null), up to the end of
    /// the appended log. Charged as sequential transfer of the bytes
    /// scanned.
    ///
    /// Materializes the whole suffix; recovery paths should prefer
    /// [`scan_records`](LogManager::scan_records), which streams in
    /// bounded chunks.
    pub fn scan_from(&self, start: Lsn) -> Result<Vec<(Lsn, LogRecord)>, LogError> {
        self.scan_records(start)?.collect()
    }

    /// Streaming forward scan from `start` (or the first record if
    /// `start` is null) to the end of the log as appended at this call
    /// (more precisely: to the contiguously complete end, so a scan
    /// racing appenders never observes a half-copied record). Records
    /// are decoded in chunks of at most [`LogScanner::CHUNK_BYTES`] per
    /// buffer access, so analysis and media-recovery passes over an
    /// arbitrarily long log hold only one chunk in memory. Each chunk is
    /// charged as sequential transfer of the bytes consumed.
    pub fn scan_records(&self, start: Lsn) -> Result<LogScanner, LogError> {
        let base = self.inner.buf.base();
        let pos = if start.is_valid() {
            start.0
        } else {
            Lsn::FIRST.0.max(base)
        };
        let end = self.complete_end();
        if pos > end {
            return Err(LogError::OutOfBounds {
                lsn: start,
                durable_end: Lsn(end),
            });
        }
        if pos < base {
            return Err(LogError::Truncated {
                lsn: start,
                truncate_point: Lsn(base),
            });
        }
        Ok(LogScanner {
            log: self.clone(),
            pos,
            end,
            buffered: std::collections::VecDeque::new(),
            failed: false,
            charged_overhead: false,
        })
    }

    /// Walks the **per-page log chain** backward from `start` until (and
    /// excluding) a record at or below `stop`, returning `(lsn, record)`
    /// newest-first. Each hop is charged as a random I/O.
    ///
    /// This is the access pattern of single-page recovery's first phase
    /// (Figure 10): the caller then replays the returned records in
    /// reverse, i.e. pops them off the LIFO stack this vector represents.
    pub fn scan_backward_chain(
        &self,
        start: Lsn,
        stop: Lsn,
    ) -> Result<Vec<(Lsn, LogRecord)>, LogError> {
        let mut out = Vec::new();
        let mut lsn = start;
        while lsn.is_valid() && lsn > stop {
            let record = self.read_record_at(lsn, true)?;
            let prev = record.prev_page_lsn;
            out.push((lsn, record));
            lsn = prev;
        }
        Ok(out)
    }

    /// Bytes currently **addressed** by the log (stable prefix plus
    /// buffer). This is the live WAL footprint: truncation shrinks it
    /// even though LSNs (virtual byte offsets) keep growing.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.inner.buf.end().saturating_sub(self.inner.buf.base())
    }

    /// Snapshot of the log statistics. Counters are read individually
    /// (they are independent atomics), so a snapshot taken while other
    /// threads run is internally consistent only counter-by-counter.
    #[must_use]
    pub fn stats(&self) -> LogStats {
        self.inner
            .stats
            .snapshot(self.inner.buf.end() - Lsn::FIRST.0)
    }
}

/// Streaming forward log scan (see [`LogManager::scan_records`]).
///
/// The scanner snapshots the log's complete end at creation: records
/// appended while the scan runs (e.g. by inline single-page recovery
/// during a redo pass) are not visited, matching the materializing
/// [`LogManager::scan_from`]. No lock is held across the caller's
/// per-record work; each refill copies one chunk out of the segmented
/// buffer.
pub struct LogScanner {
    log: LogManager,
    pos: u64,
    end: u64,
    buffered: std::collections::VecDeque<(Lsn, LogRecord)>,
    failed: bool,
    /// The per-command overhead is charged once per scan, not per chunk.
    charged_overhead: bool,
}

impl LogScanner {
    /// Upper bound on bytes decoded (and buffered records' worth of log)
    /// per buffer access. A single record larger than this is fetched
    /// exactly, on its own.
    pub const CHUNK_BYTES: usize = 64 * 1024;

    /// Copies and decodes the next chunk of records.
    fn refill(&mut self) -> Result<(), LogError> {
        let buf = &self.log.inner.buf;
        let truncated = |pos: u64, base: u64| LogError::Truncated {
            lsn: Lsn(pos),
            truncate_point: Lsn(base),
        };
        let base = buf.base();
        if self.pos < base {
            // The log was truncated out from under a paused scan.
            return Err(truncated(self.pos, base));
        }
        // A crash while the scan is paused may shrink the log.
        let end = self.end.min(self.log.complete_end());
        let start = self.pos;
        if start >= end {
            return Ok(());
        }
        let chunk_end = end.min(start + Self::CHUNK_BYTES as u64);
        let mut bytes = buf
            .copy(start, chunk_end)
            .map_err(|b| truncated(start, b))?;
        let mut off = 0usize;
        loop {
            let rem = bytes.len() - off;
            let pos = start + off as u64;
            if rem < LogRecord::FRAME_BYTES {
                // The chunk boundary sliced a header — or, when the
                // chunk reaches the scan horizon, the horizon itself
                // sits mid-record (the complete watermark has segment
                // granularity, so it may cut a record that straddles a
                // segment while its tail copy is still publishing). A
                // header that would not even fit below the reserved end
                // is corruption, not an append in flight.
                if rem > 0 && pos + LogRecord::FRAME_BYTES as u64 > self.log.inner.buf.end() {
                    return Err(LogError::Corrupt {
                        lsn: Lsn(pos),
                        detail: "truncated record header".into(),
                    });
                }
                break;
            }
            let total =
                LogRecord::framed_len(bytes[off..off + 4].try_into().expect("4 bytes")) as u64;
            if total > rem as u64 {
                if off > 0 {
                    break; // next refill restarts at this record
                }
                if pos + total > end {
                    // The record extends past the scan horizon: an
                    // append still in flight ends the scan cleanly; a
                    // length running past even the reserved end is
                    // garbage.
                    if pos + total > self.log.inner.buf.end() {
                        return Err(LogError::Corrupt {
                            lsn: Lsn(pos),
                            detail: "record length runs past the log end".into(),
                        });
                    }
                    break;
                }
                // A single record larger than the chunk: fetch exactly.
                bytes = buf.copy(pos, pos + total).map_err(|b| truncated(pos, b))?;
                let (record, len) = LogRecord::decode(&bytes).map_err(|e| LogError::Corrupt {
                    lsn: Lsn(pos),
                    detail: e.to_string(),
                })?;
                self.buffered.push_back((Lsn(pos), record));
                off = len;
                break;
            }
            let (record, len) =
                LogRecord::decode(&bytes[off..]).map_err(|e| LogError::Corrupt {
                    lsn: Lsn(pos),
                    detail: e.to_string(),
                })?;
            self.buffered.push_back((Lsn(pos), record));
            off += len;
            if off >= Self::CHUNK_BYTES {
                break;
            }
        }
        if off == 0 {
            return Ok(()); // nothing fully visible yet: not an error
        }
        let scanned = off;
        // One logical sequential scan: the per-command overhead is paid
        // on the first chunk only, so the charged total matches what the
        // materializing `scan_from` charged for the same byte range.
        let mut cost = self.log.cost.cost(IoKind::SequentialRead, scanned);
        if self.charged_overhead {
            cost = cost - self.log.cost.cost(IoKind::SequentialRead, 0);
        }
        self.charged_overhead = true;
        self.log.clock.advance(cost);
        self.log
            .inner
            .stats
            .bytes_scanned
            .fetch_add(scanned as u64, Ordering::Relaxed);
        self.pos = start + off as u64;
        Ok(())
    }
}

impl Iterator for LogScanner {
    type Item = Result<(Lsn, LogRecord), LogError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.buffered.is_empty() {
            if let Err(e) = self.refill() {
                self.failed = true;
                return Some(Err(e));
            }
        }
        self.buffered.pop_front().map(Ok)
    }
}

/// Convenience builder for records, keeping call sites terse.
#[must_use]
pub fn make_record(
    tx_id: TxId,
    prev_tx_lsn: Lsn,
    page_id: PageId,
    prev_page_lsn: Lsn,
    payload: LogPayload,
) -> LogRecord {
    LogRecord {
        tx_id,
        prev_tx_lsn,
        page_id,
        prev_page_lsn,
        payload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PageOp;

    fn update_record(tx: u64, prev_tx: Lsn, page: u64, prev_page: Lsn) -> LogRecord {
        make_record(
            TxId(tx),
            prev_tx,
            PageId(page),
            prev_page,
            LogPayload::Update {
                op: PageOp::InsertRecord {
                    pos: 0,
                    bytes: vec![tx as u8; 8],
                    ghost: false,
                },
            },
        )
    }

    #[test]
    fn append_returns_increasing_lsns() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 10, Lsn::NULL));
        let b = log.append(&update_record(1, a, 10, a));
        assert_eq!(a, Lsn::FIRST);
        assert!(b > a);
        assert_eq!(log.end_lsn().0, log.total_bytes());
    }

    #[test]
    fn read_record_round_trips() {
        let log = LogManager::for_testing();
        let rec = update_record(3, Lsn::NULL, 7, Lsn::NULL);
        let lsn = log.append(&rec);
        log.force();
        assert_eq!(log.read_record(lsn).unwrap(), rec);
    }

    #[test]
    fn read_invalid_lsn_fails() {
        let log = LogManager::for_testing();
        assert!(matches!(
            log.read_record(Lsn::NULL),
            Err(LogError::OutOfBounds { .. })
        ));
        assert!(matches!(
            log.read_record(Lsn(4)),
            Err(LogError::OutOfBounds { .. })
        ));
        assert!(matches!(
            log.read_record(Lsn(10_000)),
            Err(LogError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn crash_discards_unforced_tail() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        log.force();
        let b = log.append(&update_record(1, a, 1, a));
        assert_eq!(log.end_lsn().0, log.total_bytes());
        let durable = log.crash();
        assert!(durable > a, "first record survived");
        assert!(log.read_record(a).is_ok());
        assert!(
            matches!(log.read_record(b), Err(LogError::OutOfBounds { .. })),
            "unforced record must be gone"
        );
    }

    #[test]
    fn scan_from_returns_all_records_in_order() {
        let log = LogManager::for_testing();
        let mut lsns = Vec::new();
        let mut prev = Lsn::NULL;
        for i in 0..20 {
            let lsn = log.append(&update_record(1, prev, i % 4, Lsn::NULL));
            lsns.push(lsn);
            prev = lsn;
        }
        let scanned = log.scan_from(Lsn::NULL).unwrap();
        assert_eq!(scanned.len(), 20);
        assert_eq!(scanned.iter().map(|(l, _)| *l).collect::<Vec<_>>(), lsns);
        // Scan from the middle.
        let mid = lsns[10];
        let scanned = log.scan_from(mid).unwrap();
        assert_eq!(scanned.len(), 10);
        assert_eq!(scanned[0].0, mid);
    }

    #[test]
    fn scan_records_streams_in_chunks_and_matches_scan_from() {
        let log = LogManager::for_testing();
        let mut prev = Lsn::NULL;
        // Enough records to span several refill chunks (each record is
        // tens of bytes; CHUNK_BYTES is 64 KiB).
        for i in 0..4000 {
            prev = log.append(&update_record(1, prev, i % 7, Lsn::NULL));
        }
        let materialized = log.scan_from(Lsn::NULL).unwrap();
        let streamed: Vec<(Lsn, LogRecord)> = log
            .scan_records(Lsn::NULL)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, materialized);
        assert_eq!(streamed.len(), 4000);
        // Starting mid-log works too.
        let mid = materialized[2000].0;
        let tail: Vec<(Lsn, LogRecord)> = log
            .scan_records(mid)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(tail.len(), 2000);
        assert_eq!(tail[0].0, mid);
        // Out-of-range start errors at creation, like scan_from.
        assert!(matches!(
            log.scan_records(Lsn(1 << 40)),
            Err(LogError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn scan_records_charges_one_command_overhead_per_scan() {
        let clock = Arc::new(SimClock::new());
        let cost = IoCostModel::disk_2012();
        let log = LogManager::new(Arc::clone(&clock), cost);
        let mut prev = Lsn::NULL;
        for i in 0..4000 {
            prev = log.append(&update_record(1, prev, i % 7, Lsn::NULL));
        }
        let scan_bytes = (log.total_bytes() - Lsn::FIRST.0) as usize;
        assert!(
            scan_bytes > LogScanner::CHUNK_BYTES,
            "test must span several chunks"
        );
        let before = clock.now();
        let n = log.scan_records(Lsn::NULL).unwrap().count();
        assert_eq!(n, 4000);
        // Chunked streaming must charge exactly what one sequential scan
        // of the same bytes costs: a single command overhead + transfer.
        assert_eq!(
            clock.now() - before,
            cost.cost(IoKind::SequentialRead, scan_bytes)
        );
    }

    #[test]
    fn scan_records_ignores_appends_after_creation() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let mut scanner = log.scan_records(Lsn::NULL).unwrap();
        // Appended after the scanner snapshot: must not be visited.
        log.append(&update_record(1, a, 2, Lsn::NULL));
        assert_eq!(scanner.next().unwrap().unwrap().0, a);
        assert!(scanner.next().is_none());
    }

    #[test]
    fn oversized_records_span_segments_and_scan_back() {
        let log = LogManager::for_testing();
        // A checkpoint record much larger than one buffer segment
        // (64 KiB): its copy must straddle several segments and the
        // scanner's exact-fetch path must hand it back whole.
        let dirty_pages: Vec<(PageId, Lsn)> = (0..6000).map(|i| (PageId(i), Lsn(i + 1))).collect();
        let big = make_record(
            TxId::NONE,
            Lsn::NULL,
            PageId::INVALID,
            Lsn::NULL,
            LogPayload::CheckpointBegin {
                active_txns: vec![(TxId(1), Lsn(9))],
                dirty_pages,
            },
        );
        assert!(big.encode().len() > LogScanner::CHUNK_BYTES);
        let before = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let lsn = log.append(&big);
        let after = log.append(&update_record(1, Lsn::NULL, 2, Lsn::NULL));
        assert_eq!(log.read_record(lsn).unwrap(), big);
        let scanned = log.scan_from(Lsn::NULL).unwrap();
        assert_eq!(
            scanned.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![before, lsn, after]
        );
        assert_eq!(scanned[1].1, big);
    }

    #[test]
    fn per_page_chain_walk() {
        let log = LogManager::for_testing();
        // Interleave updates to pages 1 and 2; chains must separate them.
        let mut prev_by_page = [Lsn::NULL; 3];
        let mut chain_page1 = Vec::new();
        for i in 0..10 {
            let page = 1 + (i % 2) as u64;
            let lsn = log.append(&update_record(
                1,
                Lsn::NULL,
                page,
                prev_by_page[page as usize],
            ));
            prev_by_page[page as usize] = lsn;
            if page == 1 {
                chain_page1.push(lsn);
            }
        }
        let walked = log.scan_backward_chain(prev_by_page[1], Lsn::NULL).unwrap();
        let walked_lsns: Vec<Lsn> = walked.iter().map(|(l, _)| *l).collect();
        let mut expected = chain_page1.clone();
        expected.reverse();
        assert_eq!(
            walked_lsns, expected,
            "chain must visit page-1 records newest-first"
        );
        for (_, rec) in &walked {
            assert_eq!(rec.page_id, PageId(1));
        }
    }

    #[test]
    fn chain_walk_stops_at_boundary() {
        let log = LogManager::for_testing();
        let mut prev = Lsn::NULL;
        let mut lsns = Vec::new();
        for _ in 0..6 {
            let lsn = log.append(&update_record(1, Lsn::NULL, 4, prev));
            lsns.push(lsn);
            prev = lsn;
        }
        // Stop at the third record: only records strictly above it return.
        let walked = log.scan_backward_chain(prev, lsns[2]).unwrap();
        assert_eq!(walked.len(), 3);
        assert!(walked.iter().all(|(l, _)| *l > lsns[2]));
    }

    #[test]
    fn checkpoint_pointer_survives_force_not_crash() {
        let log = LogManager::for_testing();
        log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let ckpt = log.append(&make_record(
            TxId::NONE,
            Lsn::NULL,
            PageId::INVALID,
            Lsn::NULL,
            LogPayload::CheckpointBegin {
                active_txns: vec![],
                dirty_pages: vec![],
            },
        ));
        assert_eq!(log.last_checkpoint(), Lsn::NULL, "not durable yet");
        log.force();
        assert_eq!(log.last_checkpoint(), ckpt);
        // A later, unforced checkpoint is not yet the master record, and a
        // crash erases it entirely.
        let _ckpt2 = log.append(&make_record(
            TxId::NONE,
            Lsn::NULL,
            PageId::INVALID,
            Lsn::NULL,
            LogPayload::CheckpointBegin {
                active_txns: vec![],
                dirty_pages: vec![],
            },
        ));
        assert_eq!(
            log.last_checkpoint(),
            ckpt,
            "unforced checkpoint is not the master record"
        );
        log.crash();
        assert_eq!(log.last_checkpoint(), ckpt);
    }

    #[test]
    fn force_through_stops_at_the_record_boundary() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let b = log.append(&update_record(1, a, 2, Lsn::NULL));
        let c = log.append(&update_record(1, b, 3, Lsn::NULL));
        // Force through the middle record: a and b durable, c not.
        let durable = log.force_through(b);
        assert_eq!(durable, c, "durable end = start of the next record");
        assert!(log.read_record(a).is_ok());
        assert!(log.read_record(b).is_ok());
        log.crash();
        assert!(
            matches!(log.read_record(c), Err(LogError::OutOfBounds { .. })),
            "the record past the force boundary is lost"
        );
    }

    #[test]
    fn force_through_is_idempotent_and_bounded() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        log.force();
        let forces = log.stats().forces;
        // Already durable: no new force.
        log.force_through(a);
        assert_eq!(log.stats().forces, forces);
        // Null and out-of-range LSNs never panic.
        log.force_through(Lsn::NULL);
        log.force_through(Lsn(1 << 40));
    }

    #[test]
    fn force_through_past_the_appended_end_forces_everything() {
        // Defensive branch 1: an LSN beyond the appended log must not
        // panic or spin — the whole buffer is forced instead.
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let b = log.append(&update_record(1, a, 2, Lsn::NULL));
        let before = log.stats().forces;
        let durable = log.force_through(Lsn(log.end_lsn().0 + 1_000));
        assert_eq!(durable, log.end_lsn(), "everything becomes durable");
        assert_eq!(log.stats().forces, before + 1);
        assert!(log.durable_lsn() > b, "both records durable");
        log.crash();
        assert!(log.read_record(a).is_ok());
        assert!(log.read_record(b).is_ok());
    }

    #[test]
    fn force_through_mid_record_forces_everything() {
        // Defensive branch 2: an LSN that is not a record boundary fails
        // the checksummed decode and falls back to forcing everything —
        // over-forcing is safe, under-forcing would break the WAL rule.
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let b = log.append(&update_record(1, a, 2, Lsn::NULL));
        let before = log.stats().forces;
        let durable = log.force_through(Lsn(a.0 + 1));
        assert_eq!(durable, log.end_lsn(), "fallback forces the whole buffer");
        assert_eq!(log.stats().forces, before + 1);
        log.crash();
        assert!(log.read_record(b).is_ok(), "record past the bogus LSN kept");
    }

    #[test]
    fn stats_track_kinds_and_forces() {
        let log = LogManager::for_testing();
        log.append(&make_record(
            TxId(1),
            Lsn::NULL,
            PageId::INVALID,
            Lsn::NULL,
            LogPayload::TxBegin { system: false },
        ));
        log.append(&update_record(1, Lsn::FIRST, 2, Lsn::NULL));
        log.append(&make_record(
            TxId::NONE,
            Lsn::NULL,
            PageId(2),
            Lsn::NULL,
            LogPayload::PriUpdate {
                page_lsn: Lsn(30),
                backup: crate::BackupRef::None,
            },
        ));
        log.force();
        log.force(); // nothing pending: not counted
        let stats = log.stats();
        assert_eq!(stats.records_appended, 3);
        assert_eq!(stats.forces, 1);
        assert_eq!(stats.appends_of("tx-begin"), 1);
        assert_eq!(stats.appends_of("update"), 1);
        assert_eq!(stats.appends_of("pri-update"), 1);
        assert_eq!(stats.appends_of("clr"), 0);
    }

    #[test]
    fn kind_index_matches_kind_names() {
        use crate::record::{BackupRef, CompressedPageImage};
        let image = CompressedPageImage {
            page_size: 64,
            heap_top: 64,
            head: vec![],
            tail: vec![],
        };
        let samples = [
            LogPayload::TxBegin { system: false },
            LogPayload::TxCommit { system: true },
            LogPayload::TxAbort,
            LogPayload::Update {
                op: PageOp::SetGhost {
                    pos: 0,
                    old: false,
                    new: true,
                },
            },
            LogPayload::Clr {
                op: PageOp::SetGhost {
                    pos: 0,
                    old: true,
                    new: false,
                },
                undo_next: Lsn::NULL,
            },
            LogPayload::PageFormat {
                image: image.clone(),
            },
            LogPayload::FullPageImage { image },
            LogPayload::PriUpdate {
                page_lsn: Lsn(1),
                backup: BackupRef::None,
            },
            LogPayload::BackupTaken {
                backup: BackupRef::None,
                page_lsn: Lsn(1),
            },
            LogPayload::CheckpointBegin {
                active_txns: vec![],
                dirty_pages: vec![],
            },
            LogPayload::CheckpointEnd,
        ];
        for (i, payload) in samples.iter().enumerate() {
            assert_eq!(kind_index(payload), i);
            assert_eq!(LogStats::KIND_NAMES[i], payload.kind_name());
        }
    }

    #[test]
    fn group_commit_telemetry_reconciles_single_threaded() {
        let log = LogManager::for_testing();
        let mut prev = Lsn::NULL;
        for i in 0..10 {
            prev = log.append(&update_record(1, prev, i, Lsn::NULL));
            log.force_through(prev);
        }
        let stats = log.stats();
        assert_eq!(stats.forces, 10, "one flush per uncombined force");
        assert_eq!(stats.force_batches, 0, "no concurrency, no batches");
        assert_eq!(stats.force_waiters_absorbed, 0);
        // Every durable byte was flushed exactly once.
        assert_eq!(stats.bytes_forced, log.durable_lsn().0 - Lsn::FIRST.0);
        assert!(stats.bytes_per_force() > 0.0);
    }

    #[test]
    fn debug_format_never_blocks_on_the_control_lock() {
        let log = LogManager::for_testing();
        log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        assert!(format!("{log:?}").contains("checkpoints"));
        // Formatting while another holder owns the control mutex must
        // not deadlock: the Debug impl try-locks and reports <locked>.
        let guard = log.inner.control.lock();
        let rendered = format!("{log:?}");
        drop(guard);
        assert!(
            rendered.contains("<locked>"),
            "contended Debug must degrade, not block: {rendered}"
        );
    }

    #[test]
    fn truncate_reclaims_bytes_and_preserves_lsns() {
        let log = LogManager::for_testing();
        let mut lsns = Vec::new();
        let mut prev = Lsn::NULL;
        for i in 0..50 {
            let lsn = log.append(&update_record(1, prev, i % 4, Lsn::NULL));
            lsns.push(lsn);
            prev = lsn;
        }
        log.force();
        // Nothing archived yet: truncation is refused outright.
        assert_eq!(log.truncate_until(lsns[25]).unwrap(), 0);
        assert_eq!(log.truncate_point(), Lsn::NULL);

        log.set_archive_watermark(lsns[30]);
        let before = log.total_bytes();
        let dropped = log.truncate_until(lsns[25]).unwrap();
        assert!(dropped > 0);
        assert_eq!(log.total_bytes(), before - dropped);
        assert_eq!(log.truncate_point(), lsns[25]);
        assert_eq!(log.stats().truncations, 1);
        assert_eq!(log.stats().bytes_truncated, dropped);

        // LSNs are stable: surviving records read back identically.
        for &lsn in &lsns[25..] {
            assert!(log.read_record(lsn).is_ok(), "surviving {lsn} readable");
        }
        // Truncated records answer with the dedicated error.
        assert!(matches!(
            log.read_record(lsns[10]),
            Err(LogError::Truncated { .. })
        ));
        assert!(matches!(
            log.scan_records(lsns[10]),
            Err(LogError::Truncated { .. })
        ));
        // A scan from the cut (or a null start) sees exactly the tail.
        let tail = log.scan_from(lsns[25]).unwrap();
        assert_eq!(tail.len(), 25);
        assert_eq!(tail[0].0, lsns[25]);
        let from_null = log.scan_from(Lsn::NULL).unwrap();
        assert_eq!(from_null, tail, "null start clamps to the cut");
        // Appends continue with monotone LSNs past the cut.
        let next = log.append(&update_record(1, prev, 0, Lsn::NULL));
        assert!(next > *lsns.last().unwrap());
    }

    #[test]
    fn truncate_clamps_to_watermark_and_durable() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let b = log.append(&update_record(1, a, 1, a));
        log.force();
        let c = log.append(&update_record(1, b, 1, b)); // unforced
        log.set_archive_watermark(b);
        let end_before = log.end_lsn();
        // Asking to truncate everything only drops up to the watermark.
        log.truncate_until(Lsn(1 << 40)).unwrap();
        assert_eq!(log.truncate_point(), b);
        assert!(log.read_record(b).is_ok());
        // The unforced tail is untouched: same end, record still there.
        assert_eq!(log.end_lsn(), end_before);
        assert_eq!(log.read_record(c).unwrap(), update_record(1, b, 1, b));
        // Re-truncating at the same point is a no-op.
        assert_eq!(log.truncate_until(b).unwrap(), 0);
        assert_eq!(log.stats().truncations, 1);
    }

    #[test]
    fn truncate_keeps_checkpoint_list_consistent() {
        let log = LogManager::for_testing();
        let ckpt_record = || {
            make_record(
                TxId::NONE,
                Lsn::NULL,
                PageId::INVALID,
                Lsn::NULL,
                LogPayload::CheckpointBegin {
                    active_txns: vec![],
                    dirty_pages: vec![],
                },
            )
        };
        let ck1 = log.append(&ckpt_record());
        let mid = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let ck2 = log.append(&ckpt_record());
        log.force();
        assert_eq!(log.last_checkpoint(), ck2);

        // Truncate past the first checkpoint: the master record is still
        // the second one, and the dropped entry no longer confuses it.
        log.set_archive_watermark(ck2);
        log.truncate_until(mid).unwrap();
        assert_eq!(log.last_checkpoint(), ck2);
        assert!(matches!(
            log.read_record(ck1),
            Err(LogError::Truncated { .. })
        ));

        // An unforced later checkpoint still does not become the master
        // record, and a crash keeps the list and cursor consistent.
        let _ck3 = log.append(&ckpt_record());
        assert_eq!(log.last_checkpoint(), ck2);
        log.crash();
        assert_eq!(log.last_checkpoint(), ck2);
        // Watermark survives the crash (it covered only durable bytes).
        assert_eq!(log.archive_watermark(), ck2);
    }

    #[test]
    fn truncate_rejects_mid_record_cut() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let b = log.append(&update_record(1, a, 1, a));
        log.force();
        log.set_archive_watermark(log.durable_lsn());
        assert!(matches!(
            log.truncate_until(Lsn(b.0 + 1)),
            Err(LogError::Corrupt { .. })
        ));
        // The failed attempt changed nothing.
        assert_eq!(log.truncate_point(), Lsn::NULL);
        assert!(log.read_record(a).is_ok());
    }

    #[test]
    fn watermark_is_monotone_and_durable_clamped() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        log.force();
        let b = log.append(&update_record(1, a, 1, a)); // unforced
        log.set_archive_watermark(b);
        assert_eq!(
            log.archive_watermark(),
            log.durable_lsn(),
            "watermark never covers unforced bytes"
        );
        log.set_archive_watermark(a);
        assert_eq!(
            log.archive_watermark(),
            log.durable_lsn(),
            "watermark never regresses"
        );
    }

    #[test]
    fn force_charges_sequential_io() {
        use spf_util::SimDuration;
        let clock = Arc::new(SimClock::new());
        let log = LogManager::new(Arc::clone(&clock), IoCostModel::disk_2012());
        log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let before = clock.now();
        log.force();
        let force_cost = clock.now() - before;
        assert!(force_cost > SimDuration::ZERO);
        assert!(
            force_cost < SimDuration::from_millis(8),
            "a force must not pay a random-access latency"
        );
        let before = clock.now();
        let _ = log.read_record(Lsn::FIRST).unwrap();
        assert!(
            clock.now() - before >= SimDuration::from_millis(8),
            "a recovery-time record read pays a random access"
        );
    }
}
