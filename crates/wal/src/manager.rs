//! The log manager: append, force, and the read paths recovery needs.
//!
//! The log is a single virtual byte sequence. [`LogManager::append`]
//! serializes a record into the volatile log buffer and returns its LSN
//! (byte offset); [`LogManager::force`] makes everything appended so far
//! durable. A simulated crash ([`LogManager::crash`]) discards the
//! unforced tail — exactly the paper's model where a system transaction's
//! unforced commit record can be lost without data loss (Section 5.1.5).
//!
//! Read paths serve the three consumers in the paper:
//!
//! * [`LogManager::read_record`] — one record by LSN, charged as a random
//!   I/O: this is what single-page recovery's backward chain walk pays
//!   ("dozens of I/Os in order to read the required log records",
//!   Section 6);
//! * [`LogManager::scan_from`] — forward sequential scan, what system
//!   recovery's analysis/redo passes and media recovery pay;
//! * [`LogManager::scan_backward_chain`] — the per-page chain walk,
//!   returning records newest-first (callers push them on a LIFO stack,
//!   Figure 10).

use std::sync::Arc;

use parking_lot::Mutex;

use spf_storage::PageId;
use spf_util::{IoCostModel, IoKind, SimClock};

use crate::record::{LogPayload, LogRecord, Lsn, TxId};

/// Errors from log reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The LSN does not address a durable record.
    OutOfBounds {
        /// The offending LSN.
        lsn: Lsn,
        /// One past the last durable byte.
        durable_end: Lsn,
    },
    /// The record at this LSN failed its checksum or could not be parsed.
    ///
    /// By the paper's stable-storage assumption this never happens to a
    /// correctly-written log; it indicates a bug or an unsupported failure.
    Corrupt {
        /// The offending LSN.
        lsn: Lsn,
        /// Parser diagnostics.
        detail: String,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::OutOfBounds { lsn, durable_end } => {
                write!(f, "{lsn} out of bounds (durable log ends at {durable_end})")
            }
            LogError::Corrupt { lsn, detail } => write!(f, "corrupt log record at {lsn}: {detail}"),
        }
    }
}

impl std::error::Error for LogError {}

/// Counters the experiment harness reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Records appended.
    pub records_appended: u64,
    /// Bytes appended.
    pub bytes_appended: u64,
    /// Explicit force (flush) calls that had bytes to flush.
    pub forces: u64,
    /// Records read through the random-access path.
    pub random_record_reads: u64,
    /// Bytes scanned through the sequential path.
    pub bytes_scanned: u64,
    /// Appends broken down by payload kind, keyed by
    /// [`LogPayload::kind_name`] order — see [`LogStats::KIND_NAMES`].
    pub appends_by_kind: [u64; 11],
}

impl LogStats {
    /// Names corresponding to the `appends_by_kind` slots.
    pub const KIND_NAMES: [&'static str; 11] = [
        "tx-begin",
        "tx-commit",
        "tx-abort",
        "update",
        "clr",
        "page-format",
        "full-page-image",
        "pri-update",
        "backup-taken",
        "checkpoint-begin",
        "checkpoint-end",
    ];

    /// Count of appended records of the given payload kind.
    #[must_use]
    pub fn appends_of(&self, kind_name: &str) -> u64 {
        Self::KIND_NAMES
            .iter()
            .position(|&n| n == kind_name)
            .map_or(0, |i| self.appends_by_kind[i])
    }
}

fn kind_index(payload: &LogPayload) -> usize {
    LogStats::KIND_NAMES
        .iter()
        .position(|&n| n == payload.kind_name())
        .expect("every payload kind is in KIND_NAMES")
}

struct Inner {
    /// Complete log bytes: `[0, durable_len)` is stable storage, the rest
    /// is the volatile log buffer.
    bytes: Vec<u8>,
    durable_len: usize,
    stats: LogStats,
    /// LSNs of every checkpoint-begin record appended, ascending (the
    /// newest durable one plays the role of the "master record" a real
    /// system keeps in a known location).
    checkpoints: Vec<Lsn>,
}

/// The write-ahead log.
///
/// Cheap to clone; all clones share the same log.
#[derive(Clone)]
pub struct LogManager {
    inner: Arc<Mutex<Inner>>,
    clock: Arc<SimClock>,
    cost: IoCostModel,
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("LogManager")
            .field("len", &inner.bytes.len())
            .field("durable_len", &inner.durable_len)
            .finish()
    }
}

impl LogManager {
    /// Creates an empty log charging `cost` against `clock`.
    #[must_use]
    pub fn new(clock: Arc<SimClock>, cost: IoCostModel) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                // Reserve the header region so LSN 0 is never a record.
                bytes: vec![0u8; Lsn::FIRST.0 as usize],
                durable_len: Lsn::FIRST.0 as usize,
                stats: LogStats::default(),
                checkpoints: Vec::new(),
            })),
            clock,
            cost,
        }
    }

    /// Creates a log with free I/O for unit tests.
    #[must_use]
    pub fn for_testing() -> Self {
        Self::new(Arc::new(SimClock::new()), IoCostModel::free())
    }

    /// The shared simulated clock.
    #[must_use]
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// Appends `record` to the log buffer and returns its LSN.
    ///
    /// The record is *not* durable until [`force`](LogManager::force); the
    /// write-ahead discipline (force before page write, force on user
    /// commit) is the callers' responsibility, as in ARIES.
    pub fn append(&self, record: &LogRecord) -> Lsn {
        let encoded = record.encode();
        let mut inner = self.inner.lock();
        let lsn = Lsn(inner.bytes.len() as u64);
        inner.bytes.extend_from_slice(&encoded);
        inner.stats.records_appended += 1;
        inner.stats.bytes_appended += encoded.len() as u64;
        inner.stats.appends_by_kind[kind_index(&record.payload)] += 1;
        if matches!(record.payload, LogPayload::CheckpointBegin { .. }) {
            inner.checkpoints.push(lsn);
        }
        lsn
    }

    /// Forces the log buffer to stable storage. Returns the durable end
    /// LSN. Charged as one sequential write of the flushed bytes.
    pub fn force(&self) -> Lsn {
        let mut inner = self.inner.lock();
        let pending = inner.bytes.len() - inner.durable_len;
        if pending > 0 {
            self.clock
                .advance(self.cost.cost(IoKind::SequentialWrite, pending));
            inner.durable_len = inner.bytes.len();
            inner.stats.forces += 1;
        }
        Lsn(inner.durable_len as u64)
    }

    /// Forces the log **through** the record starting at `lsn` (the WAL
    /// rule before a page write: everything up to and including the
    /// record that set the page's PageLSN must be durable, but records
    /// appended later — e.g. other pages' PRI updates — need not be).
    /// No-op if that prefix is already durable.
    pub fn force_through(&self, lsn: Lsn) -> Lsn {
        let mut inner = self.inner.lock();
        if !lsn.is_valid() || (lsn.0 as usize) < inner.durable_len {
            return Lsn(inner.durable_len as u64);
        }
        let end = if (lsn.0 as usize) >= inner.bytes.len() {
            // Beyond the appended log (defensive): force everything.
            inner.bytes.len()
        } else {
            match LogRecord::decode(&inner.bytes[lsn.0 as usize..]) {
                Ok((_, len)) => lsn.0 as usize + len,
                // Not a record boundary (defensive): force everything.
                Err(_) => inner.bytes.len(),
            }
        };
        let pending = end.saturating_sub(inner.durable_len);
        if pending > 0 {
            self.clock
                .advance(self.cost.cost(IoKind::SequentialWrite, pending));
            inner.durable_len = end;
            inner.stats.forces += 1;
        }
        Lsn(inner.durable_len as u64)
    }

    /// One past the last durable byte.
    #[must_use]
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().durable_len as u64)
    }

    /// One past the last appended byte (durable or not).
    #[must_use]
    pub fn end_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().bytes.len() as u64)
    }

    /// LSN of the most recent **durable** checkpoint-begin record, i.e.
    /// what the master record would point to after a crash.
    #[must_use]
    pub fn last_checkpoint(&self) -> Lsn {
        let inner = self.inner.lock();
        inner
            .checkpoints
            .iter()
            .rev()
            .find(|l| l.0 < inner.durable_len as u64)
            .copied()
            .unwrap_or(Lsn::NULL)
    }

    /// Simulates a system failure: the volatile log buffer is discarded.
    /// Returns the durable end LSN the restarted system will see.
    pub fn crash(&self) -> Lsn {
        let mut inner = self.inner.lock();
        let durable = inner.durable_len;
        inner.bytes.truncate(durable);
        // Checkpoint records in the lost buffer never happened.
        inner.checkpoints.retain(|l| l.0 < durable as u64);
        Lsn(durable as u64)
    }

    /// Reads the single record at `lsn`, charged as one random I/O (the
    /// cost single-page recovery pays per chain hop).
    pub fn read_record(&self, lsn: Lsn) -> Result<LogRecord, LogError> {
        let mut inner = self.inner.lock();
        self.read_record_locked(&mut inner, lsn, true)
    }

    fn read_record_locked(
        &self,
        inner: &mut Inner,
        lsn: Lsn,
        charge: bool,
    ) -> Result<LogRecord, LogError> {
        let durable_end = Lsn(inner.bytes.len() as u64);
        if !lsn.is_valid() || lsn.0 as usize >= inner.bytes.len() || lsn < Lsn::FIRST {
            return Err(LogError::OutOfBounds { lsn, durable_end });
        }
        if charge {
            // One random log I/O; body length is bounded by a page or so,
            // charge a nominal 4 KiB transfer.
            self.clock.advance(self.cost.cost(IoKind::RandomRead, 4096));
            inner.stats.random_record_reads += 1;
        }
        let (record, _len) =
            LogRecord::decode(&inner.bytes[lsn.0 as usize..]).map_err(|e| LogError::Corrupt {
                lsn,
                detail: e.to_string(),
            })?;
        Ok(record)
    }

    /// Forward sequential scan of `(lsn, record)` pairs starting at
    /// `start` (or the first record if `start` is null), up to the end of
    /// the appended log. Charged as sequential transfer of the bytes
    /// scanned.
    ///
    /// Materializes the whole suffix; recovery paths should prefer
    /// [`scan_records`](LogManager::scan_records), which streams in
    /// bounded chunks.
    pub fn scan_from(&self, start: Lsn) -> Result<Vec<(Lsn, LogRecord)>, LogError> {
        self.scan_records(start)?.collect()
    }

    /// Streaming forward scan from `start` (or the first record if
    /// `start` is null) to the end of the log as appended at this call.
    /// Records are decoded in chunks of at most
    /// [`LogScanner::CHUNK_BYTES`] per log-lock acquisition, so analysis
    /// and media-recovery passes over an arbitrarily long log hold only
    /// one chunk in memory. Each chunk is charged as sequential transfer
    /// of the bytes consumed.
    pub fn scan_records(&self, start: Lsn) -> Result<LogScanner, LogError> {
        let inner = self.inner.lock();
        let pos = if start.is_valid() {
            start.0 as usize
        } else {
            Lsn::FIRST.0 as usize
        };
        let end = inner.bytes.len();
        if pos > end {
            return Err(LogError::OutOfBounds {
                lsn: start,
                durable_end: Lsn(end as u64),
            });
        }
        drop(inner);
        Ok(LogScanner {
            log: self.clone(),
            pos: pos as u64,
            end: end as u64,
            buffered: std::collections::VecDeque::new(),
            failed: false,
            charged_overhead: false,
        })
    }

    /// Walks the **per-page log chain** backward from `start` until (and
    /// excluding) a record at or below `stop`, returning `(lsn, record)`
    /// newest-first. Each hop is charged as a random I/O.
    ///
    /// This is the access pattern of single-page recovery's first phase
    /// (Figure 10): the caller then replays the returned records in
    /// reverse, i.e. pops them off the LIFO stack this vector represents.
    pub fn scan_backward_chain(
        &self,
        start: Lsn,
        stop: Lsn,
    ) -> Result<Vec<(Lsn, LogRecord)>, LogError> {
        let mut inner = self.inner.lock();
        let mut out = Vec::new();
        let mut lsn = start;
        while lsn.is_valid() && lsn > stop {
            self.clock.advance(self.cost.cost(IoKind::RandomRead, 4096));
            inner.stats.random_record_reads += 1;
            let record = self.read_record_locked(&mut inner, lsn, false)?;
            let prev = record.prev_page_lsn;
            out.push((lsn, record));
            lsn = prev;
        }
        Ok(out)
    }

    /// Total bytes currently held by the log (stable prefix plus buffer).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().bytes.len() as u64
    }

    /// Snapshot of the log statistics.
    #[must_use]
    pub fn stats(&self) -> LogStats {
        self.inner.lock().stats
    }
}

/// Streaming forward log scan (see [`LogManager::scan_records`]).
///
/// The scanner snapshots the log end at creation: records appended while
/// the scan runs (e.g. by inline single-page recovery during a redo
/// pass) are not visited, matching the materializing
/// [`LogManager::scan_from`]. The log lock is only held while refilling
/// one chunk, never across the caller's per-record work.
pub struct LogScanner {
    log: LogManager,
    pos: u64,
    end: u64,
    buffered: std::collections::VecDeque<(Lsn, LogRecord)>,
    failed: bool,
    /// The per-command overhead is charged once per scan, not per chunk.
    charged_overhead: bool,
}

impl LogScanner {
    /// Upper bound on bytes decoded (and buffered records' worth of log)
    /// per lock acquisition.
    pub const CHUNK_BYTES: usize = 64 * 1024;

    /// Decodes the next chunk of records under the log lock.
    fn refill(&mut self) -> Result<(), LogError> {
        let mut inner = self.log.inner.lock();
        let end = (self.end as usize).min(inner.bytes.len());
        let start = self.pos as usize;
        if start >= end {
            return Ok(());
        }
        let mut pos = start;
        while pos < end && pos - start < Self::CHUNK_BYTES {
            let (record, len) =
                LogRecord::decode(&inner.bytes[pos..]).map_err(|e| LogError::Corrupt {
                    lsn: Lsn(pos as u64),
                    detail: e.to_string(),
                })?;
            self.buffered.push_back((Lsn(pos as u64), record));
            pos += len;
        }
        let scanned = pos - start;
        // One logical sequential scan: the per-command overhead is paid
        // on the first chunk only, so the charged total matches what the
        // materializing `scan_from` charged for the same byte range.
        let mut cost = self.log.cost.cost(IoKind::SequentialRead, scanned);
        if self.charged_overhead {
            cost = cost - self.log.cost.cost(IoKind::SequentialRead, 0);
        }
        self.charged_overhead = true;
        self.log.clock.advance(cost);
        inner.stats.bytes_scanned += scanned as u64;
        self.pos = pos as u64;
        Ok(())
    }
}

impl Iterator for LogScanner {
    type Item = Result<(Lsn, LogRecord), LogError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.buffered.is_empty() {
            if let Err(e) = self.refill() {
                self.failed = true;
                return Some(Err(e));
            }
        }
        self.buffered.pop_front().map(Ok)
    }
}

/// Convenience builder for records, keeping call sites terse.
#[must_use]
pub fn make_record(
    tx_id: TxId,
    prev_tx_lsn: Lsn,
    page_id: PageId,
    prev_page_lsn: Lsn,
    payload: LogPayload,
) -> LogRecord {
    LogRecord {
        tx_id,
        prev_tx_lsn,
        page_id,
        prev_page_lsn,
        payload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PageOp;

    fn update_record(tx: u64, prev_tx: Lsn, page: u64, prev_page: Lsn) -> LogRecord {
        make_record(
            TxId(tx),
            prev_tx,
            PageId(page),
            prev_page,
            LogPayload::Update {
                op: PageOp::InsertRecord {
                    pos: 0,
                    bytes: vec![tx as u8; 8],
                    ghost: false,
                },
            },
        )
    }

    #[test]
    fn append_returns_increasing_lsns() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 10, Lsn::NULL));
        let b = log.append(&update_record(1, a, 10, a));
        assert_eq!(a, Lsn::FIRST);
        assert!(b > a);
        assert_eq!(log.end_lsn().0, log.total_bytes());
    }

    #[test]
    fn read_record_round_trips() {
        let log = LogManager::for_testing();
        let rec = update_record(3, Lsn::NULL, 7, Lsn::NULL);
        let lsn = log.append(&rec);
        log.force();
        assert_eq!(log.read_record(lsn).unwrap(), rec);
    }

    #[test]
    fn read_invalid_lsn_fails() {
        let log = LogManager::for_testing();
        assert!(matches!(
            log.read_record(Lsn::NULL),
            Err(LogError::OutOfBounds { .. })
        ));
        assert!(matches!(
            log.read_record(Lsn(4)),
            Err(LogError::OutOfBounds { .. })
        ));
        assert!(matches!(
            log.read_record(Lsn(10_000)),
            Err(LogError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn crash_discards_unforced_tail() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        log.force();
        let b = log.append(&update_record(1, a, 1, a));
        assert_eq!(log.end_lsn().0, log.total_bytes());
        let durable = log.crash();
        assert!(durable > a, "first record survived");
        assert!(log.read_record(a).is_ok());
        assert!(
            matches!(log.read_record(b), Err(LogError::OutOfBounds { .. })),
            "unforced record must be gone"
        );
    }

    #[test]
    fn scan_from_returns_all_records_in_order() {
        let log = LogManager::for_testing();
        let mut lsns = Vec::new();
        let mut prev = Lsn::NULL;
        for i in 0..20 {
            let lsn = log.append(&update_record(1, prev, i % 4, Lsn::NULL));
            lsns.push(lsn);
            prev = lsn;
        }
        let scanned = log.scan_from(Lsn::NULL).unwrap();
        assert_eq!(scanned.len(), 20);
        assert_eq!(scanned.iter().map(|(l, _)| *l).collect::<Vec<_>>(), lsns);
        // Scan from the middle.
        let mid = lsns[10];
        let scanned = log.scan_from(mid).unwrap();
        assert_eq!(scanned.len(), 10);
        assert_eq!(scanned[0].0, mid);
    }

    #[test]
    fn scan_records_streams_in_chunks_and_matches_scan_from() {
        let log = LogManager::for_testing();
        let mut prev = Lsn::NULL;
        // Enough records to span several refill chunks (each record is
        // tens of bytes; CHUNK_BYTES is 64 KiB).
        for i in 0..4000 {
            prev = log.append(&update_record(1, prev, i % 7, Lsn::NULL));
        }
        let materialized = log.scan_from(Lsn::NULL).unwrap();
        let streamed: Vec<(Lsn, LogRecord)> = log
            .scan_records(Lsn::NULL)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, materialized);
        assert_eq!(streamed.len(), 4000);
        // Starting mid-log works too.
        let mid = materialized[2000].0;
        let tail: Vec<(Lsn, LogRecord)> = log
            .scan_records(mid)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(tail.len(), 2000);
        assert_eq!(tail[0].0, mid);
        // Out-of-range start errors at creation, like scan_from.
        assert!(matches!(
            log.scan_records(Lsn(1 << 40)),
            Err(LogError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn scan_records_charges_one_command_overhead_per_scan() {
        let clock = Arc::new(SimClock::new());
        let cost = IoCostModel::disk_2012();
        let log = LogManager::new(Arc::clone(&clock), cost);
        let mut prev = Lsn::NULL;
        for i in 0..4000 {
            prev = log.append(&update_record(1, prev, i % 7, Lsn::NULL));
        }
        let scan_bytes = (log.total_bytes() - Lsn::FIRST.0) as usize;
        assert!(
            scan_bytes > LogScanner::CHUNK_BYTES,
            "test must span several chunks"
        );
        let before = clock.now();
        let n = log.scan_records(Lsn::NULL).unwrap().count();
        assert_eq!(n, 4000);
        // Chunked streaming must charge exactly what one sequential scan
        // of the same bytes costs: a single command overhead + transfer.
        assert_eq!(
            clock.now() - before,
            cost.cost(IoKind::SequentialRead, scan_bytes)
        );
    }

    #[test]
    fn scan_records_ignores_appends_after_creation() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let mut scanner = log.scan_records(Lsn::NULL).unwrap();
        // Appended after the scanner snapshot: must not be visited.
        log.append(&update_record(1, a, 2, Lsn::NULL));
        assert_eq!(scanner.next().unwrap().unwrap().0, a);
        assert!(scanner.next().is_none());
    }

    #[test]
    fn per_page_chain_walk() {
        let log = LogManager::for_testing();
        // Interleave updates to pages 1 and 2; chains must separate them.
        let mut prev_by_page = [Lsn::NULL; 3];
        let mut chain_page1 = Vec::new();
        for i in 0..10 {
            let page = 1 + (i % 2) as u64;
            let lsn = log.append(&update_record(
                1,
                Lsn::NULL,
                page,
                prev_by_page[page as usize],
            ));
            prev_by_page[page as usize] = lsn;
            if page == 1 {
                chain_page1.push(lsn);
            }
        }
        let walked = log.scan_backward_chain(prev_by_page[1], Lsn::NULL).unwrap();
        let walked_lsns: Vec<Lsn> = walked.iter().map(|(l, _)| *l).collect();
        let mut expected = chain_page1.clone();
        expected.reverse();
        assert_eq!(
            walked_lsns, expected,
            "chain must visit page-1 records newest-first"
        );
        for (_, rec) in &walked {
            assert_eq!(rec.page_id, PageId(1));
        }
    }

    #[test]
    fn chain_walk_stops_at_boundary() {
        let log = LogManager::for_testing();
        let mut prev = Lsn::NULL;
        let mut lsns = Vec::new();
        for _ in 0..6 {
            let lsn = log.append(&update_record(1, Lsn::NULL, 4, prev));
            lsns.push(lsn);
            prev = lsn;
        }
        // Stop at the third record: only records strictly above it return.
        let walked = log.scan_backward_chain(prev, lsns[2]).unwrap();
        assert_eq!(walked.len(), 3);
        assert!(walked.iter().all(|(l, _)| *l > lsns[2]));
    }

    #[test]
    fn checkpoint_pointer_survives_force_not_crash() {
        let log = LogManager::for_testing();
        log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let ckpt = log.append(&make_record(
            TxId::NONE,
            Lsn::NULL,
            PageId::INVALID,
            Lsn::NULL,
            LogPayload::CheckpointBegin {
                active_txns: vec![],
                dirty_pages: vec![],
            },
        ));
        assert_eq!(log.last_checkpoint(), Lsn::NULL, "not durable yet");
        log.force();
        assert_eq!(log.last_checkpoint(), ckpt);
        // A later, unforced checkpoint is not yet the master record, and a
        // crash erases it entirely.
        let _ckpt2 = log.append(&make_record(
            TxId::NONE,
            Lsn::NULL,
            PageId::INVALID,
            Lsn::NULL,
            LogPayload::CheckpointBegin {
                active_txns: vec![],
                dirty_pages: vec![],
            },
        ));
        assert_eq!(
            log.last_checkpoint(),
            ckpt,
            "unforced checkpoint is not the master record"
        );
        log.crash();
        assert_eq!(log.last_checkpoint(), ckpt);
    }

    #[test]
    fn force_through_stops_at_the_record_boundary() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let b = log.append(&update_record(1, a, 2, Lsn::NULL));
        let c = log.append(&update_record(1, b, 3, Lsn::NULL));
        // Force through the middle record: a and b durable, c not.
        let durable = log.force_through(b);
        assert_eq!(durable, c, "durable end = start of the next record");
        assert!(log.read_record(a).is_ok());
        assert!(log.read_record(b).is_ok());
        log.crash();
        assert!(
            matches!(log.read_record(c), Err(LogError::OutOfBounds { .. })),
            "the record past the force boundary is lost"
        );
    }

    #[test]
    fn force_through_is_idempotent_and_bounded() {
        let log = LogManager::for_testing();
        let a = log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        log.force();
        let forces = log.stats().forces;
        // Already durable: no new force.
        log.force_through(a);
        assert_eq!(log.stats().forces, forces);
        // Null and out-of-range LSNs never panic.
        log.force_through(Lsn::NULL);
        log.force_through(Lsn(1 << 40));
    }

    #[test]
    fn stats_track_kinds_and_forces() {
        let log = LogManager::for_testing();
        log.append(&make_record(
            TxId(1),
            Lsn::NULL,
            PageId::INVALID,
            Lsn::NULL,
            LogPayload::TxBegin { system: false },
        ));
        log.append(&update_record(1, Lsn::FIRST, 2, Lsn::NULL));
        log.append(&make_record(
            TxId::NONE,
            Lsn::NULL,
            PageId(2),
            Lsn::NULL,
            LogPayload::PriUpdate {
                page_lsn: Lsn(30),
                backup: crate::BackupRef::None,
            },
        ));
        log.force();
        log.force(); // nothing pending: not counted
        let stats = log.stats();
        assert_eq!(stats.records_appended, 3);
        assert_eq!(stats.forces, 1);
        assert_eq!(stats.appends_of("tx-begin"), 1);
        assert_eq!(stats.appends_of("update"), 1);
        assert_eq!(stats.appends_of("pri-update"), 1);
        assert_eq!(stats.appends_of("clr"), 0);
    }

    #[test]
    fn force_charges_sequential_io() {
        use spf_util::SimDuration;
        let clock = Arc::new(SimClock::new());
        let log = LogManager::new(Arc::clone(&clock), IoCostModel::disk_2012());
        log.append(&update_record(1, Lsn::NULL, 1, Lsn::NULL));
        let before = clock.now();
        log.force();
        let force_cost = clock.now() - before;
        assert!(force_cost > SimDuration::ZERO);
        assert!(
            force_cost < SimDuration::from_millis(8),
            "a force must not pay a random-access latency"
        );
        let before = clock.now();
        let _ = log.read_record(Lsn::FIRST).unwrap();
        assert!(
            clock.now() - before >= SimDuration::from_millis(8),
            "a recovery-time record read pays a random access"
        );
    }
}
