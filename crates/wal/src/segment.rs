//! The segmented, reservation-based log buffer.
//!
//! The log's in-memory representation used to be one `Vec<u8>` behind a
//! global mutex: every append copied its bytes while holding the lock,
//! so N appenders serialized on one cache line. This module replaces the
//! vector with a chain of fixed-size **segments** and an atomic
//! **reservation counter** (the scalable-logging design popularized by
//! Aether's consolidated log-buffer reservation):
//!
//! 1. an appender reserves `[lsn, lsn + len)` with one `fetch_add` on
//!    the tail counter — this is the *only* serialization point of the
//!    append path, and it is a single atomic instruction;
//! 2. it copies its encoded record directly into the owning segment(s)
//!    with no exclusive lock held (a shared read-lock on the segment
//!    directory keeps the directory stable during the copy; appends
//!    proceed in parallel under it);
//! 3. it publishes completion by adding its byte count to each touched
//!    segment's **filled watermark** with `Release` ordering.
//!
//! The force path derives "how far is the buffer contiguously complete"
//! from the filled watermarks (see [`SegmentedBuffer::complete_end`]);
//! everything below that line is safe to flush and to read.
//!
//! Segment bytes are stored in `AtomicU64` words, which keeps the whole
//! crate inside `#![forbid(unsafe_code)]` while copying at word speed:
//! a reservation's interior words belong to it alone (plain relaxed
//! stores), and the one word it may share with a neighbouring
//! reservation at each edge is written with `fetch_or` into its own
//! byte lanes — sound because every byte lane is written exactly once
//! between crashes over a zeroed buffer (the crash path re-zeroes the
//! recycled tail). The `Release`-watermark / `Acquire`-reader pairing
//! makes the relaxed word writes visible before any reader may look.
//!
//! LSNs remain *virtual* byte offsets: truncation
//! ([`SegmentedBuffer::truncate_to`]) retires whole segments below the
//! cut, reclaiming their memory while every surviving LSN stays valid.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Segment capacity in bytes. Records freely straddle segment
/// boundaries (and may exceed one segment, e.g. large checkpoint or
/// full-page-image records); the copy is split across the owners.
pub(crate) const SEG_BYTES: u64 = 64 * 1024;

const SEG_WORDS: usize = (SEG_BYTES / 8) as usize;

/// One fixed-size slab of log bytes covering the virtual range
/// `[start, start + SEG_BYTES)`.
struct Segment {
    /// Virtual offset of the first byte.
    start: u64,
    /// The bytes, little-endian packed 8 per word.
    words: Box<[AtomicU64]>,
    /// How many bytes of this segment have been fully copied in.
    /// `fetch_add(n, Release)` after each copy; when it equals the
    /// reserved portion of the segment, every byte here is complete.
    filled: AtomicUsize,
}

impl Segment {
    fn new(start: u64) -> Self {
        let mut words = Vec::with_capacity(SEG_WORDS);
        words.resize_with(SEG_WORDS, || AtomicU64::new(0));
        Self {
            start,
            words: words.into_boxed_slice(),
            filled: AtomicUsize::new(0),
        }
    }

    /// One past this segment's last virtual offset.
    fn end(&self) -> u64 {
        self.start + SEG_BYTES
    }

    /// Copies `bytes` to byte offset `local`, relaxed. Interior words
    /// are plain stores; edge words shared with a neighbouring
    /// reservation are merged with `fetch_or` into this range's lanes.
    fn write_bytes(&self, local: usize, bytes: &[u8]) {
        let mut i = 0usize;
        let mut off = local;
        while i < bytes.len() && !off.is_multiple_of(8) {
            let shift = (off % 8) * 8;
            self.words[off / 8].fetch_or(u64::from(bytes[i]) << shift, Ordering::Relaxed);
            i += 1;
            off += 1;
        }
        while bytes.len() - i >= 8 {
            let v = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
            self.words[off / 8].store(v, Ordering::Relaxed);
            i += 8;
            off += 8;
        }
        while i < bytes.len() {
            let shift = (off % 8) * 8;
            self.words[off / 8].fetch_or(u64::from(bytes[i]) << shift, Ordering::Relaxed);
            i += 1;
            off += 1;
        }
    }

    /// Fills `out` from byte offset `local`.
    fn read_into(&self, local: usize, out: &mut [u8]) {
        let mut off = local;
        let mut i = 0usize;
        while i < out.len() && !off.is_multiple_of(8) {
            out[i] = (self.words[off / 8].load(Ordering::Relaxed) >> ((off % 8) * 8)) as u8;
            i += 1;
            off += 1;
        }
        while out.len() - i >= 8 {
            out[i..i + 8]
                .copy_from_slice(&self.words[off / 8].load(Ordering::Relaxed).to_le_bytes());
            i += 8;
            off += 8;
        }
        while i < out.len() {
            out[i] = (self.words[off / 8].load(Ordering::Relaxed) >> ((off % 8) * 8)) as u8;
            i += 1;
            off += 1;
        }
    }

    /// Appends `len` bytes starting at byte offset `local` to `out`.
    fn read_bytes(&self, local: usize, len: usize, out: &mut Vec<u8>) {
        let mut off = local;
        let end = local + len;
        while off < end && !off.is_multiple_of(8) {
            out.push((self.words[off / 8].load(Ordering::Relaxed) >> ((off % 8) * 8)) as u8);
            off += 1;
        }
        while end - off >= 8 {
            out.extend_from_slice(&self.words[off / 8].load(Ordering::Relaxed).to_le_bytes());
            off += 8;
        }
        while off < end {
            out.push((self.words[off / 8].load(Ordering::Relaxed) >> ((off % 8) * 8)) as u8);
            off += 1;
        }
    }

    /// Zeroes every byte at or above byte offset `keep` (crash path:
    /// the recycled tail must read as zero for `fetch_or` edge writes).
    fn zero_from(&self, keep: usize) {
        let first_whole = keep.div_ceil(8);
        if !keep.is_multiple_of(8) {
            let mask = (1u64 << ((keep % 8) * 8)) - 1;
            self.words[keep / 8].fetch_and(mask, Ordering::Relaxed);
        }
        for w in &self.words[first_whole..] {
            w.store(0, Ordering::Relaxed);
        }
    }
}

/// Contiguous run of live segments, indexable by virtual offset.
struct Directory {
    /// `segs[0].start / SEG_BYTES`; segments are contiguous after it.
    first_index: u64,
    segs: Vec<Arc<Segment>>,
}

impl Directory {
    /// Position of the segment containing `off`, if it is live.
    fn pos_of(&self, off: u64) -> Option<usize> {
        let idx = off / SEG_BYTES;
        let pos = idx.checked_sub(self.first_index)? as usize;
        (pos < self.segs.len()).then_some(pos)
    }

    /// One past the highest virtual offset any live segment can hold.
    fn covered_end(&self) -> u64 {
        (self.first_index + self.segs.len() as u64) * SEG_BYTES
    }
}

/// Distinguishes buffers (several logs can coexist in one process) in
/// the thread-local segment cache.
static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The segment this thread last touched. Records are ~100 bytes and
    /// segments 64 KiB, so almost every append (and most single-record
    /// reads) lands in the cached segment and runs with **no lock at
    /// all** — the directory's reader/writer lock is only taken on
    /// segment rollover and multi-segment ranges. The `Arc` keeps a
    /// cached segment memory-safe even if truncation retires it.
    static CACHED_SEG: RefCell<Option<CachedSeg>> = const { RefCell::new(None) };
}

struct CachedSeg {
    /// Which [`SegmentedBuffer`] the segment belongs to.
    buffer: u64,
    /// The buffer's crash generation at caching time: a crash rewinds
    /// the reservation counter and may rebuild segments at the same
    /// indexes, so stale handles must miss.
    generation: u64,
    /// `seg.start / SEG_BYTES`.
    index: u64,
    seg: Arc<Segment>,
}

/// The segmented log buffer: reservation counter, segment directory,
/// and the truncation point.
pub(crate) struct SegmentedBuffer {
    /// Virtual offset of the truncation point: the first offset still
    /// addressed by the log. Only advanced under the directory write
    /// lock (by `truncate_to`).
    base: AtomicU64,
    /// Next unreserved virtual offset — the append serialization point.
    reserved: AtomicU64,
    /// Monotone cache of the highest proven complete end: once a prefix
    /// is proven fully copied it stays copied, so the cache both makes
    /// the watermark monotone (an in-flight copy must not hide a
    /// previously proven prefix behind its segment's start) and
    /// shortens the segment walk.
    complete_cache: AtomicU64,
    /// Identity in the thread-local segment cache.
    id: u64,
    /// Bumped by every crash; invalidates thread-local handles.
    generation: AtomicU64,
    dir: RwLock<Directory>,
}

impl SegmentedBuffer {
    /// A buffer whose first `header_len` bytes are a pre-filled
    /// (all-zero) header region, so offset 0 is never a record.
    pub(crate) fn new(header_len: u64) -> Self {
        debug_assert!(header_len < SEG_BYTES);
        let seg = Segment::new(0);
        seg.filled.store(header_len as usize, Ordering::Relaxed);
        Self {
            base: AtomicU64::new(0),
            reserved: AtomicU64::new(header_len),
            complete_cache: AtomicU64::new(header_len),
            id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
            generation: AtomicU64::new(0),
            dir: RwLock::new(Directory {
                first_index: 0,
                segs: vec![Arc::new(seg)],
            }),
        }
    }

    /// Runs `f` on this thread's cached segment if it is exactly segment
    /// `index` of this buffer's current generation; `None` on a miss.
    fn with_cached<R>(&self, index: u64, f: impl FnOnce(&Segment) -> R) -> Option<R> {
        CACHED_SEG.with(|cell| {
            let cached = cell.borrow();
            let cs = cached.as_ref()?;
            (cs.buffer == self.id
                && cs.index == index
                && cs.generation == self.generation.load(Ordering::Relaxed))
            .then(|| f(&cs.seg))
        })
    }

    /// Installs `seg` as this thread's cached segment.
    fn remember(&self, index: u64, seg: &Arc<Segment>) {
        CACHED_SEG.with(|cell| {
            *cell.borrow_mut() = Some(CachedSeg {
                buffer: self.id,
                generation: self.generation.load(Ordering::Relaxed),
                index,
                seg: Arc::clone(seg),
            });
        });
    }

    /// First virtual offset still addressed by the buffer.
    pub(crate) fn base(&self) -> u64 {
        self.base.load(Ordering::Acquire)
    }

    /// One past the last reserved byte (some of which may still be
    /// mid-copy — see [`SegmentedBuffer::complete_end`]).
    pub(crate) fn end(&self) -> u64 {
        self.reserved.load(Ordering::Acquire)
    }

    /// Reserves `len` bytes, returning the start of the reserved range.
    /// The caller must complete the reservation with exactly one
    /// [`SegmentedBuffer::write`] of `len` bytes at that offset.
    pub(crate) fn reserve(&self, len: u64) -> u64 {
        self.reserved.fetch_add(len, Ordering::AcqRel)
    }

    /// Copies `bytes` into the reserved range starting at `lsn`, then
    /// publishes completion. The common case — the whole range inside
    /// this thread's cached segment — takes no lock at all; rollover and
    /// multi-segment ranges go through the directory's shared lock, and
    /// an exclusive lock is only taken when the directory must grow.
    pub(crate) fn write(&self, lsn: u64, bytes: &[u8]) {
        let end = lsn + bytes.len() as u64;
        let first_index = lsn / SEG_BYTES;
        if first_index == (end - 1) / SEG_BYTES {
            let hit = self.with_cached(first_index, |seg| {
                seg.write_bytes((lsn - seg.start) as usize, bytes);
                seg.filled.fetch_add(bytes.len(), Ordering::Release);
            });
            if hit.is_some() {
                return;
            }
        }
        loop {
            let dir = self.dir.read();
            if dir.covered_end() < end {
                drop(dir);
                let mut dir = self.dir.write();
                while dir.covered_end() < end {
                    let start = dir.covered_end();
                    dir.segs.push(Arc::new(Segment::new(start)));
                }
                continue; // re-enter through the shared path
            }
            let mut off = lsn;
            let mut rest = bytes;
            while !rest.is_empty() {
                let pos = dir.pos_of(off).expect("reserved range is live");
                let seg = &dir.segs[pos];
                let n = ((seg.end().min(end)) - off) as usize;
                seg.write_bytes((off - seg.start) as usize, &rest[..n]);
                seg.filled.fetch_add(n, Ordering::Release);
                off += n as u64;
                rest = &rest[n..];
            }
            // The next append from this thread will very likely land in
            // the segment holding the end of this one.
            let tail_pos = dir.pos_of(end - 1).expect("reserved range is live");
            self.remember(dir.first_index + tail_pos as u64, &dir.segs[tail_pos]);
            return;
        }
    }

    /// Largest virtual offset `W ≥ floor` such that every byte in
    /// `[floor, W)` has been fully copied in. `floor` must itself be a
    /// known-complete offset (callers pass the durable end).
    ///
    /// Per segment the check is: *load `filled` first, then the
    /// reservation counter*. `filled` only ever counts completed copies,
    /// so `filled ≥ reserved-bytes-in-segment` (with the later load!)
    /// proves every reservation the counter had admitted is copied —
    /// loading in the other order would let a late, already-copied
    /// reservation mask an earlier one still in flight.
    pub(crate) fn complete_end(&self, floor: u64) -> u64 {
        let floor = floor.max(self.complete_cache.load(Ordering::Acquire));
        let dir = self.dir.read();
        let Some(start_pos) = dir.pos_of(floor) else {
            return floor; // floor sits exactly at the unextended tail
        };
        let mut end = floor;
        for seg in &dir.segs[start_pos..] {
            let filled = seg.filled.load(Ordering::Acquire) as u64;
            let reserved = self.reserved.load(Ordering::Acquire);
            let expected = reserved.min(seg.end()).saturating_sub(seg.start);
            if filled < expected {
                break;
            }
            end = seg.start + expected;
            if reserved <= seg.end() {
                break; // tail segment
            }
        }
        let end = end.max(floor);
        self.complete_cache.fetch_max(end, Ordering::AcqRel);
        end
    }

    /// Copies the range `[from, to)` out of the buffer, clamped to the
    /// live tail: the result is shorter than requested if `to` runs
    /// past the last allocated segment (readers probe ahead of records
    /// they hold, and a concurrent `reserve` may have moved the
    /// reservation counter past the tail segment *before* its `write`
    /// allocates the next one — that gap holds no bytes yet). Errors
    /// with the current truncation point if `from` has been truncated
    /// away. The caller is responsible for only *using* bytes below
    /// [`SegmentedBuffer::complete_end`] (or bytes it wrote itself).
    pub(crate) fn copy(&self, from: u64, to: u64) -> Result<Vec<u8>, u64> {
        let base = self.base.load(Ordering::Acquire);
        if from < base {
            return Err(base);
        }
        let first_index = from / SEG_BYTES;
        if to > from && first_index == (to - 1) / SEG_BYTES {
            // Lock-free single-segment read via the thread-local cache
            // (a racing truncation is linearized before this read: the
            // `Arc` keeps the bytes alive and valid).
            let hit = self.with_cached(first_index, |seg| {
                let mut out = Vec::with_capacity((to - from) as usize);
                seg.read_bytes((from - seg.start) as usize, (to - from) as usize, &mut out);
                out
            });
            if let Some(out) = hit {
                return Ok(out);
            }
        }
        let dir = self.dir.read();
        let base = self.base.load(Ordering::Acquire);
        if from < base {
            return Err(base);
        }
        let mut out = Vec::with_capacity((to - from) as usize);
        let mut off = from;
        while off < to {
            let Some(pos) = dir.pos_of(off) else {
                break; // past the live tail: clamp
            };
            let seg = &dir.segs[pos];
            let n = (seg.end().min(to) - off) as usize;
            seg.read_bytes((off - seg.start) as usize, n, &mut out);
            off += n as u64;
        }
        if let Some(pos) = dir.pos_of(from) {
            self.remember(dir.first_index + pos as u64, &dir.segs[pos]);
        }
        Ok(out)
    }

    /// Copies up to `out.len()` bytes starting at `from` into the
    /// caller's buffer — the allocation-free little sibling of
    /// [`SegmentedBuffer::copy`] for the single-record read path. Like
    /// [`copy`](SegmentedBuffer::copy), the read clamps at the live
    /// tail: bytes of `out` past the last allocated segment are left
    /// untouched (callers probing ahead of a record they hold pass a
    /// zeroed buffer and validate by checksum).
    pub(crate) fn copy_to(&self, from: u64, out: &mut [u8]) -> Result<(), u64> {
        let base = self.base.load(Ordering::Acquire);
        if from < base {
            return Err(base);
        }
        let to = from + out.len() as u64;
        let first_index = from / SEG_BYTES;
        if !out.is_empty() && first_index == (to - 1) / SEG_BYTES {
            let hit = self.with_cached(first_index, |seg| {
                seg.read_into((from - seg.start) as usize, out);
            });
            if hit.is_some() {
                return Ok(());
            }
        }
        let dir = self.dir.read();
        let base = self.base.load(Ordering::Acquire);
        if from < base {
            return Err(base);
        }
        let mut off = from;
        let mut rest = out;
        while !rest.is_empty() {
            let Some(pos) = dir.pos_of(off) else {
                break; // past the live tail: clamp
            };
            let seg = &dir.segs[pos];
            let n = ((seg.end().min(to)) - off) as usize;
            let (chunk, tail) = rest.split_at_mut(n);
            seg.read_into((off - seg.start) as usize, chunk);
            off += n as u64;
            rest = tail;
        }
        if let Some(pos) = dir.pos_of(from) {
            self.remember(dir.first_index + pos as u64, &dir.segs[pos]);
        }
        Ok(())
    }

    /// Advances the truncation point to `cut`, dropping (and freeing)
    /// every segment that lies wholly below it. The segment straddling
    /// the cut survives until the cut passes its end.
    pub(crate) fn truncate_to(&self, cut: u64) {
        let mut dir = self.dir.write();
        let drop_count = dir.segs.iter().take_while(|s| s.end() <= cut).count();
        dir.segs.drain(..drop_count);
        dir.first_index += drop_count as u64;
        self.base.store(cut, Ordering::Release);
    }

    /// Simulated crash: every byte at or above `durable` is discarded.
    /// The recycled tail is re-zeroed so future edge-word `fetch_or`
    /// writes land on clean lanes. Must not race appends or forces (the
    /// crash owns the system).
    pub(crate) fn crash_to(&self, durable: u64) {
        let mut dir = self.dir.write();
        // Rewinding the reservation counter can rebuild segments at the
        // same indexes: every thread-local handle must miss from now on.
        self.generation.fetch_add(1, Ordering::Relaxed);
        self.reserved.store(durable, Ordering::Release);
        self.complete_cache.store(durable, Ordering::Release);
        dir.segs.retain(|s| s.start < durable);
        if let Some(tail) = dir.segs.last() {
            let keep = (durable - tail.start) as usize;
            tail.zero_from(keep);
            tail.filled.store(keep, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_write_read_round_trip() {
        let buf = SegmentedBuffer::new(8);
        let payload: Vec<u8> = (0..200u8).collect();
        let lsn = buf.reserve(payload.len() as u64);
        assert_eq!(lsn, 8);
        buf.write(lsn, &payload);
        assert_eq!(buf.complete_end(8), 8 + 200);
        assert_eq!(buf.copy(lsn, lsn + 200).unwrap(), payload);
    }

    #[test]
    fn unaligned_writes_round_trip() {
        // Drive the edge-word (fetch_or) and interior (store) paths
        // through every alignment combination.
        let buf = SegmentedBuffer::new(8);
        let mut expected = Vec::new();
        let mut cursor = 8u64;
        for len in 1..=41usize {
            let payload: Vec<u8> = (0..len).map(|i| (i as u8) ^ (len as u8)).collect();
            let lsn = buf.reserve(len as u64);
            assert_eq!(lsn, cursor);
            buf.write(lsn, &payload);
            expected.extend_from_slice(&payload);
            cursor += len as u64;
        }
        assert_eq!(buf.copy(8, cursor).unwrap(), expected);
        assert_eq!(buf.complete_end(8), cursor);
    }

    #[test]
    fn writes_straddle_segment_boundaries() {
        let buf = SegmentedBuffer::new(8);
        // Fill up to just below the first boundary, then write across it.
        let filler = SEG_BYTES - 8 - 3;
        let a = buf.reserve(filler);
        buf.write(a, &vec![0xAA; filler as usize]);
        let payload: Vec<u8> = (0..64).map(|i| i as u8 ^ 0x5A).collect();
        let b = buf.reserve(payload.len() as u64);
        assert_eq!(b, SEG_BYTES - 3, "range must straddle the boundary");
        buf.write(b, &payload);
        assert_eq!(buf.complete_end(8), b + 64);
        assert_eq!(buf.copy(b, b + 64).unwrap(), payload);
    }

    #[test]
    fn oversized_record_spans_multiple_segments() {
        let buf = SegmentedBuffer::new(8);
        let big = vec![0x5Eu8; (SEG_BYTES * 2 + 100) as usize];
        let lsn = buf.reserve(big.len() as u64);
        buf.write(lsn, &big);
        assert_eq!(buf.complete_end(8), lsn + big.len() as u64);
        assert_eq!(buf.copy(lsn, lsn + big.len() as u64).unwrap(), big);
    }

    #[test]
    fn complete_end_stops_at_a_hole() {
        let buf = SegmentedBuffer::new(8);
        let a = buf.reserve(100); // reserved, not yet written
        let b = buf.reserve(50);
        buf.write(b, &[7u8; 50]); // later reservation completes first
        assert_eq!(
            buf.complete_end(8),
            8,
            "an unfilled earlier reservation must hold the watermark back"
        );
        buf.write(a, &[9u8; 100]);
        assert_eq!(buf.complete_end(8), b + 50);
    }

    #[test]
    fn truncate_frees_whole_segments_and_guards_reads() {
        let buf = SegmentedBuffer::new(8);
        let total = SEG_BYTES * 3;
        let lsn = buf.reserve(total);
        buf.write(lsn, &vec![1u8; total as usize]);
        let cut = SEG_BYTES + 17;
        buf.truncate_to(cut);
        assert_eq!(buf.base(), cut);
        assert!(buf.copy(8, 16).is_err(), "below the cut is gone");
        // The straddling segment still serves offsets at and above the cut.
        assert_eq!(buf.copy(cut, cut + 8).unwrap(), vec![1u8; 8]);
    }

    #[test]
    fn crash_discards_tail_and_allows_reuse() {
        let buf = SegmentedBuffer::new(8);
        let a = buf.reserve(40);
        buf.write(a, &[3u8; 40]);
        let durable = a + 40;
        let b = buf.reserve(SEG_BYTES * 2); // volatile, spans new segments
        buf.write(b, &vec![4u8; (SEG_BYTES * 2) as usize]);
        buf.crash_to(durable);
        assert_eq!(buf.end(), durable);
        assert_eq!(buf.complete_end(8), durable);
        // Appends resume over the recycled (re-zeroed) tail.
        let c = buf.reserve(16);
        assert_eq!(c, durable);
        buf.write(c, &[8u8; 16]);
        assert_eq!(buf.copy(c, c + 16).unwrap(), vec![8u8; 16]);
        assert_eq!(buf.copy(a, a + 40).unwrap(), vec![3u8; 40]);
    }

    #[test]
    fn reads_clamp_at_the_unallocated_tail() {
        // A reader probing ahead of a record it holds may race an
        // appender whose `reserve` already crossed the tail segment's
        // boundary but whose `write` has not yet allocated the next
        // segment. The probe must clamp, not panic.
        let buf = SegmentedBuffer::new(8);
        let filler = SEG_BYTES - 8 - 40;
        let a = buf.reserve(filler);
        buf.write(a, &vec![2u8; filler as usize]);
        // Reservation crossing into a segment that does not exist yet.
        let b = buf.reserve(100);
        assert_eq!(b, SEG_BYTES - 40);
        let probe_start = SEG_BYTES - 48;
        let mut probe = [0xFFu8; 192];
        buf.copy_to(probe_start, &mut probe).unwrap();
        assert_eq!(&probe[..8], &[2u8; 8], "written bytes returned");
        assert_eq!(&probe[8..48], &[0u8; 40], "allocated-but-unwritten zeros");
        assert_eq!(&probe[48..], &[0xFFu8; 144], "unallocated tail untouched");
        let short = buf.copy(probe_start, probe_start + 192).unwrap();
        assert_eq!(short.len(), 48, "copy clamps at the live tail");
    }

    #[test]
    fn crash_mid_word_keeps_durable_bytes_and_zeroes_the_rest() {
        let buf = SegmentedBuffer::new(8);
        let a = buf.reserve(13); // durable end lands mid-word
        buf.write(a, &[0xEEu8; 13]);
        buf.crash_to(a + 13);
        // Rewrite the discarded region with different bytes: edge-word
        // fetch_or must land on zeroed lanes, not stale 0xEE lanes.
        let b = buf.reserve(24);
        assert_eq!(b, a + 13);
        let payload: Vec<u8> = (0..24).map(|i| 0x40 | i as u8).collect();
        buf.write(b, &payload);
        assert_eq!(buf.copy(a, a + 13).unwrap(), vec![0xEE; 13]);
        assert_eq!(buf.copy(b, b + 24).unwrap(), payload);
    }
}
