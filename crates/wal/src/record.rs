//! Log sequence numbers, record taxonomy, and the physiological page
//! operations they describe.
//!
//! Records are encoded with a fixed header carrying both chain pointers:
//!
//! ```text
//! u32  body_len      (bytes after the crc field)
//! u32  crc32c        (over the remaining header fields + payload)
//! u64  tx_id
//! u64  prev_tx_lsn   — per-transaction chain (Section 5.1.1)
//! u64  page_id       — u64::MAX when the record concerns no single page
//! u64  prev_page_lsn — per-page chain (Section 5.1.4)
//! u8   payload tag, then payload body
//! ```
//!
//! Redo is **physical** ("applies to the same data pages") and undo is
//! expressed through [`PageOp::invert`], generating the compensation
//! operation that a CLR carries (Section 5.1.2's redo/undo split).

use std::fmt;

use spf_storage::{Page, PageId, SlotId, SlottedPage};
use spf_util::codec::{DecodeError, Decoder, Encoder};

/// A log sequence number: byte offset of a record in the virtual log.
///
/// `Lsn::NULL` (zero) terminates both chains; the first real record sits
/// at offset [`Lsn::FIRST`] so that zero is never a valid record address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The null LSN: "no record". Terminates log chains.
    pub const NULL: Lsn = Lsn(0);
    /// Address of the first record in a fresh log (after the log header).
    pub const FIRST: Lsn = Lsn(8);

    /// True if this is not [`Lsn::NULL`].
    #[must_use]
    pub fn is_valid(self) -> bool {
        self != Self::NULL
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "lsn:{}", self.0)
        } else {
            write!(f, "lsn:∅")
        }
    }
}

/// Transaction identifier. `TxId::NONE` marks records outside any
/// transaction (e.g. checkpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxId(pub u64);

impl TxId {
    /// "No transaction".
    pub const NONE: TxId = TxId(0);

    /// True if this is a real transaction id.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self != Self::NONE
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx:{}", self.0)
    }
}

/// Where the most recent backup of a page lives (paper Figure 7: "Page
/// identifier or log sequence number of last page formatting or of in-log
/// copy").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackupRef {
    /// No backup exists (page must be recovered from its format record or
    /// treated as a media failure).
    None,
    /// An explicit backup copy stored at this page of the backup store.
    BackupPage(PageId),
    /// A full-page image embedded in the log at this LSN.
    LogImage(Lsn),
    /// The page-format log record at this LSN (initial contents after
    /// allocation — "may substitute for an explicit backup copy").
    FormatRecord(Lsn),
    /// A full database backup: page `p`'s image lives at backup slot
    /// `first_slot + p`. One [`BackupRef`] (and one page-recovery-index
    /// range entry) covers every page — the paper's compression case.
    FullBackup {
        /// First backup-store slot of the run.
        first_slot: u64,
        /// Number of pages backed up.
        pages: u64,
    },
}

impl BackupRef {
    const TAG_NONE: u8 = 0;
    const TAG_PAGE: u8 = 1;
    const TAG_LOG: u8 = 2;
    const TAG_FORMAT: u8 = 3;
    const TAG_FULL: u8 = 4;

    fn encode(&self, enc: &mut Encoder) {
        match self {
            BackupRef::None => enc.put_u8(Self::TAG_NONE),
            BackupRef::BackupPage(id) => {
                enc.put_u8(Self::TAG_PAGE);
                enc.put_u64(id.0);
            }
            BackupRef::LogImage(lsn) => {
                enc.put_u8(Self::TAG_LOG);
                enc.put_u64(lsn.0);
            }
            BackupRef::FormatRecord(lsn) => {
                enc.put_u8(Self::TAG_FORMAT);
                enc.put_u64(lsn.0);
            }
            BackupRef::FullBackup { first_slot, pages } => {
                enc.put_u8(Self::TAG_FULL);
                enc.put_u64(*first_slot);
                enc.put_u64(*pages);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            Self::TAG_NONE => Ok(BackupRef::None),
            Self::TAG_PAGE => Ok(BackupRef::BackupPage(PageId(dec.get_u64()?))),
            Self::TAG_LOG => Ok(BackupRef::LogImage(Lsn(dec.get_u64()?))),
            Self::TAG_FORMAT => Ok(BackupRef::FormatRecord(Lsn(dec.get_u64()?))),
            Self::TAG_FULL => Ok(BackupRef::FullBackup {
                first_slot: dec.get_u64()?,
                pages: dec.get_u64()?,
            }),
            tag => Err(DecodeError::InvalidTag {
                tag,
                what: "BackupRef",
            }),
        }
    }
}

/// A page image compressed by omitting the free-space gap between the
/// slot array and the record heap ("presumably compressed", Section 5.2.1).
///
/// `head` holds the header plus slot directory, `tail` holds the record
/// heap from `heap_top` to the end of the page; the gap is zero on
/// reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedPageImage {
    /// Page size the image reconstructs to.
    pub page_size: u32,
    /// Offset where the tail resumes (the page's `heap_top`).
    pub heap_top: u32,
    /// Bytes `[0, head.len())` of the page.
    pub head: Vec<u8>,
    /// Bytes `[heap_top, page_size)` of the page.
    pub tail: Vec<u8>,
}

impl CompressedPageImage {
    /// Captures `page`, omitting its free-space gap.
    #[must_use]
    pub fn capture(page: &Page) -> Self {
        let size = page.size();
        let slot_end = spf_storage::PAGE_HEADER_SIZE + page.slot_count() as usize * 4;
        let heap_top = page.heap_top() as usize;
        // Guard against implausible headers on corrupted pages: fall back
        // to a full image rather than panic.
        let (slot_end, heap_top) = if slot_end <= heap_top && heap_top <= size {
            (slot_end, heap_top)
        } else {
            (size, size)
        };
        Self {
            page_size: size as u32,
            heap_top: heap_top as u32,
            head: page.as_bytes()[..slot_end].to_vec(),
            tail: page.as_bytes()[heap_top..].to_vec(),
        }
    }

    /// Reconstructs the full page image.
    #[must_use]
    pub fn restore(&self) -> Page {
        let mut buf = vec![0u8; self.page_size as usize];
        buf[..self.head.len()].copy_from_slice(&self.head);
        let top = self.heap_top as usize;
        buf[top..top + self.tail.len()].copy_from_slice(&self.tail);
        Page::from_bytes(buf)
    }

    /// Encoded size in bytes (what the image costs in the log).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        8 + self.head.len() + self.tail.len() + 10
    }

    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.page_size);
        enc.put_u32(self.heap_top);
        enc.put_len_bytes(&self.head);
        enc.put_len_bytes(&self.tail);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let page_size = dec.get_u32()?;
        let heap_top = dec.get_u32()?;
        let max = 1usize << 15;
        if page_size as usize > max || heap_top > page_size {
            return Err(DecodeError::LengthOutOfRange {
                got: heap_top as usize,
                max,
            });
        }
        let head = dec.get_len_bytes(page_size as usize)?.to_vec();
        let tail = dec.get_len_bytes(page_size as usize)?.to_vec();
        if head.len() > heap_top as usize || tail.len() != (page_size - heap_top) as usize {
            return Err(DecodeError::LengthOutOfRange {
                got: tail.len(),
                max: page_size as usize,
            });
        }
        Ok(Self {
            page_size,
            heap_top,
            head,
            tail,
        })
    }
}

/// A physiological operation on one slotted page: enough information for
/// physical redo *and* for generating the inverse (compensation) action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageOp {
    /// Insert a record at slot position `pos`.
    InsertRecord {
        /// Slot position the record is inserted at.
        pos: u16,
        /// Record bytes.
        bytes: Vec<u8>,
        /// Ghost flag of the new record.
        ghost: bool,
    },
    /// Physically remove the record at `pos` (system-transaction work,
    /// e.g. ghost reclamation).
    RemoveRecord {
        /// Slot position removed.
        pos: u16,
        /// Removed record bytes (for undo).
        old_bytes: Vec<u8>,
        /// Removed record's ghost flag (for undo).
        old_ghost: bool,
    },
    /// Replace the record at `pos`.
    ReplaceRecord {
        /// Slot position replaced.
        pos: u16,
        /// Previous bytes (for undo).
        old_bytes: Vec<u8>,
        /// New bytes (for redo).
        new_bytes: Vec<u8>,
    },
    /// Toggle the ghost bit at `pos` (logical delete / re-insert).
    SetGhost {
        /// Slot position affected.
        pos: u16,
        /// Previous ghost flag.
        old: bool,
        /// New ghost flag.
        new: bool,
    },
    /// Overwrite the 32-byte structure area (fence metadata, foster
    /// pointer, tree level…).
    WriteStructure {
        /// Previous structure area contents.
        old: Vec<u8>,
        /// New structure area contents.
        new: Vec<u8>,
    },
    /// Insert a run of records starting at `pos` (node splits install the
    /// moved half with one log record).
    InsertRange {
        /// First slot position of the run.
        pos: u16,
        /// The records, in slot order: `(bytes, ghost)`.
        records: Vec<(Vec<u8>, bool)>,
    },
    /// Remove the run of records `[pos, pos + records.len())` (the moved
    /// half leaving the split node).
    RemoveRange {
        /// First slot position of the run.
        pos: u16,
        /// The removed records, in slot order (for undo).
        records: Vec<(Vec<u8>, bool)>,
    },
}

/// Decoded form of a record-run payload: the starting slot position and
/// the `(bytes, ghost)` records of the run.
type DecodedRange = (u16, Vec<(Vec<u8>, bool)>);

impl PageOp {
    /// Applies the redo action to `page`. Redo is physical: it assumes
    /// the page is in the state the operation was originally applied to
    /// (enforced by PageLSN comparison in the recovery drivers).
    pub fn redo(&self, page: &mut Page) {
        match self {
            PageOp::InsertRecord { pos, bytes, ghost } => {
                let mut sp = SlottedPage::new(page);
                sp.insert_at(*pos, bytes, *ghost)
                    .expect("redo insert must fit: page was in pre-op state");
            }
            PageOp::RemoveRecord { pos, .. } => {
                let mut sp = SlottedPage::new(page);
                sp.remove(SlotId(*pos));
            }
            PageOp::ReplaceRecord { pos, new_bytes, .. } => {
                let mut sp = SlottedPage::new(page);
                sp.update(SlotId(*pos), new_bytes)
                    .expect("redo replace must fit: page was in pre-op state");
            }
            PageOp::SetGhost { pos, new, .. } => {
                let mut sp = SlottedPage::new(page);
                sp.set_ghost(SlotId(*pos), *new);
            }
            PageOp::WriteStructure { new, .. } => {
                page.structure_area_mut().copy_from_slice(new);
            }
            PageOp::InsertRange { pos, records } => {
                let mut sp = SlottedPage::new(page);
                for (i, (bytes, ghost)) in records.iter().enumerate() {
                    sp.insert_at(*pos + i as u16, bytes, *ghost)
                        .expect("redo insert-range must fit: page was in pre-op state");
                }
            }
            PageOp::RemoveRange { pos, records } => {
                let mut sp = SlottedPage::new(page);
                for _ in 0..records.len() {
                    sp.remove(SlotId(*pos));
                }
            }
        }
    }

    /// The inverse operation, i.e. what a CLR applies during rollback.
    #[must_use]
    pub fn invert(&self) -> PageOp {
        match self {
            PageOp::InsertRecord { pos, bytes, ghost } => PageOp::RemoveRecord {
                pos: *pos,
                old_bytes: bytes.clone(),
                old_ghost: *ghost,
            },
            PageOp::RemoveRecord {
                pos,
                old_bytes,
                old_ghost,
            } => PageOp::InsertRecord {
                pos: *pos,
                bytes: old_bytes.clone(),
                ghost: *old_ghost,
            },
            PageOp::ReplaceRecord {
                pos,
                old_bytes,
                new_bytes,
            } => PageOp::ReplaceRecord {
                pos: *pos,
                old_bytes: new_bytes.clone(),
                new_bytes: old_bytes.clone(),
            },
            PageOp::SetGhost { pos, old, new } => PageOp::SetGhost {
                pos: *pos,
                old: *new,
                new: *old,
            },
            PageOp::WriteStructure { old, new } => PageOp::WriteStructure {
                old: new.clone(),
                new: old.clone(),
            },
            PageOp::InsertRange { pos, records } => PageOp::RemoveRange {
                pos: *pos,
                records: records.clone(),
            },
            PageOp::RemoveRange { pos, records } => PageOp::InsertRange {
                pos: *pos,
                records: records.clone(),
            },
        }
    }

    const TAG_INSERT: u8 = 0;
    const TAG_REMOVE: u8 = 1;
    const TAG_REPLACE: u8 = 2;
    const TAG_GHOST: u8 = 3;
    const TAG_STRUCTURE: u8 = 4;
    const TAG_INSERT_RANGE: u8 = 5;
    const TAG_REMOVE_RANGE: u8 = 6;

    fn encode_range(enc: &mut Encoder, pos: u16, records: &[(Vec<u8>, bool)]) {
        enc.put_u16(pos);
        enc.put_varint(records.len() as u64);
        for (bytes, ghost) in records {
            enc.put_u8(u8::from(*ghost));
            enc.put_len_bytes(bytes);
        }
    }

    fn decode_range(dec: &mut Decoder<'_>) -> Result<DecodedRange, DecodeError> {
        let pos = dec.get_u16()?;
        let n = dec.get_varint()? as usize;
        if n > 1 << 15 {
            return Err(DecodeError::LengthOutOfRange {
                got: n,
                max: 1 << 15,
            });
        }
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let ghost = dec.get_u8()? != 0;
            let bytes = dec.get_len_bytes(1 << 15)?.to_vec();
            records.push((bytes, ghost));
        }
        Ok((pos, records))
    }

    fn encode(&self, enc: &mut Encoder) {
        match self {
            PageOp::InsertRecord { pos, bytes, ghost } => {
                enc.put_u8(Self::TAG_INSERT);
                enc.put_u16(*pos);
                enc.put_u8(u8::from(*ghost));
                enc.put_len_bytes(bytes);
            }
            PageOp::RemoveRecord {
                pos,
                old_bytes,
                old_ghost,
            } => {
                enc.put_u8(Self::TAG_REMOVE);
                enc.put_u16(*pos);
                enc.put_u8(u8::from(*old_ghost));
                enc.put_len_bytes(old_bytes);
            }
            PageOp::ReplaceRecord {
                pos,
                old_bytes,
                new_bytes,
            } => {
                enc.put_u8(Self::TAG_REPLACE);
                enc.put_u16(*pos);
                enc.put_len_bytes(old_bytes);
                enc.put_len_bytes(new_bytes);
            }
            PageOp::SetGhost { pos, old, new } => {
                enc.put_u8(Self::TAG_GHOST);
                enc.put_u16(*pos);
                enc.put_u8(u8::from(*old));
                enc.put_u8(u8::from(*new));
            }
            PageOp::WriteStructure { old, new } => {
                enc.put_u8(Self::TAG_STRUCTURE);
                enc.put_len_bytes(old);
                enc.put_len_bytes(new);
            }
            PageOp::InsertRange { pos, records } => {
                enc.put_u8(Self::TAG_INSERT_RANGE);
                Self::encode_range(enc, *pos, records);
            }
            PageOp::RemoveRange { pos, records } => {
                enc.put_u8(Self::TAG_REMOVE_RANGE);
                Self::encode_range(enc, *pos, records);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        const MAX_REC: usize = 1 << 15;
        match dec.get_u8()? {
            Self::TAG_INSERT => {
                let pos = dec.get_u16()?;
                let ghost = dec.get_u8()? != 0;
                let bytes = dec.get_len_bytes(MAX_REC)?.to_vec();
                Ok(PageOp::InsertRecord { pos, bytes, ghost })
            }
            Self::TAG_REMOVE => {
                let pos = dec.get_u16()?;
                let old_ghost = dec.get_u8()? != 0;
                let old_bytes = dec.get_len_bytes(MAX_REC)?.to_vec();
                Ok(PageOp::RemoveRecord {
                    pos,
                    old_bytes,
                    old_ghost,
                })
            }
            Self::TAG_REPLACE => {
                let pos = dec.get_u16()?;
                let old_bytes = dec.get_len_bytes(MAX_REC)?.to_vec();
                let new_bytes = dec.get_len_bytes(MAX_REC)?.to_vec();
                Ok(PageOp::ReplaceRecord {
                    pos,
                    old_bytes,
                    new_bytes,
                })
            }
            Self::TAG_GHOST => {
                let pos = dec.get_u16()?;
                let old = dec.get_u8()? != 0;
                let new = dec.get_u8()? != 0;
                Ok(PageOp::SetGhost { pos, old, new })
            }
            Self::TAG_STRUCTURE => {
                let old = dec.get_len_bytes(64)?.to_vec();
                let new = dec.get_len_bytes(64)?.to_vec();
                Ok(PageOp::WriteStructure { old, new })
            }
            Self::TAG_INSERT_RANGE => {
                let (pos, records) = Self::decode_range(dec)?;
                Ok(PageOp::InsertRange { pos, records })
            }
            Self::TAG_REMOVE_RANGE => {
                let (pos, records) = Self::decode_range(dec)?;
                Ok(PageOp::RemoveRange { pos, records })
            }
            tag => Err(DecodeError::InvalidTag {
                tag,
                what: "PageOp",
            }),
        }
    }
}

/// The body of a log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogPayload {
    /// A transaction begins. `system` marks the paper's system
    /// transactions (Figure 5): contents-neutral structural updates whose
    /// commit does not force the log.
    TxBegin {
        /// True for a system transaction.
        system: bool,
    },
    /// Transaction commit.
    TxCommit {
        /// True for a system transaction (commit record not forced).
        system: bool,
    },
    /// Transaction end after complete rollback.
    TxAbort,
    /// A physiological update to one data page.
    Update {
        /// The operation; carries redo and undo information.
        op: PageOp,
    },
    /// Compensation log record written during rollback: redo-only.
    Clr {
        /// The compensation operation (already inverted).
        op: PageOp,
        /// Next record to undo for this transaction (skips the undone one).
        undo_next: Lsn,
    },
    /// Page formatted after allocation: carries the full initial contents,
    /// so that "the log record containing formatting information for the
    /// initial page image may substitute for an explicit backup copy"
    /// (Section 5.2.1).
    PageFormat {
        /// The initial page image.
        image: CompressedPageImage,
    },
    /// An explicit full-page image taken during normal processing — an
    /// in-log backup copy.
    FullPageImage {
        /// The captured image.
        image: CompressedPageImage,
    },
    /// The paper's new record: an update of the page recovery index,
    /// written after a completed page write (Figure 11). Subsumes
    /// "logging completed writes" (Sections 5.1.2, 5.2.4).
    PriUpdate {
        /// PageLSN the data page carried when it was written.
        page_lsn: Lsn,
        /// Most recent backup location for the page.
        backup: BackupRef,
    },
    /// A backup copy of the page was taken (explicit copy, page move, or
    /// in-log image); updates the PRI's backup information.
    BackupTaken {
        /// Where the backup lives.
        backup: BackupRef,
        /// PageLSN of the page at backup time.
        page_lsn: Lsn,
    },
    /// Fuzzy checkpoint begin: active transactions and dirty pages.
    CheckpointBegin {
        /// Active transactions and their most recent log record.
        active_txns: Vec<(TxId, Lsn)>,
        /// Dirty pages and their recovery LSN (first dirtying record).
        dirty_pages: Vec<(PageId, Lsn)>,
    },
    /// Checkpoint end.
    CheckpointEnd,
}

impl LogPayload {
    const TAG_TX_BEGIN: u8 = 0;
    const TAG_TX_COMMIT: u8 = 1;
    const TAG_TX_ABORT: u8 = 2;
    const TAG_UPDATE: u8 = 3;
    const TAG_CLR: u8 = 4;
    const TAG_PAGE_FORMAT: u8 = 5;
    const TAG_FULL_IMAGE: u8 = 6;
    const TAG_PRI_UPDATE: u8 = 7;
    const TAG_BACKUP_TAKEN: u8 = 8;
    const TAG_CKPT_BEGIN: u8 = 9;
    const TAG_CKPT_END: u8 = 10;

    /// True for the records that form a page's **content chain** — the
    /// ones whose redo (or inverse) reconstructs page state: updates,
    /// CLRs, format records, and full-page images. These are what
    /// single-page recovery replays (Figure 10) and page versioning
    /// inverts (Section 5.1.4).
    #[must_use]
    pub fn is_page_content(&self) -> bool {
        matches!(
            self,
            LogPayload::Update { .. }
                | LogPayload::Clr { .. }
                | LogPayload::PageFormat { .. }
                | LogPayload::FullPageImage { .. }
        )
    }

    /// True for every record recovery could need again once the WAL is
    /// truncated: the content chain plus the page-recovery-index
    /// maintenance trail (PriUpdate, BackupTaken). This is the
    /// archiver's keep-filter; transaction-control and checkpoint
    /// records stay WAL-only by the safe-truncation rule.
    #[must_use]
    pub fn is_page_relevant(&self) -> bool {
        self.is_page_content()
            || matches!(
                self,
                LogPayload::PriUpdate { .. } | LogPayload::BackupTaken { .. }
            )
    }

    /// Short name for diagnostics and experiment tables.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            LogPayload::TxBegin { .. } => "tx-begin",
            LogPayload::TxCommit { .. } => "tx-commit",
            LogPayload::TxAbort => "tx-abort",
            LogPayload::Update { .. } => "update",
            LogPayload::Clr { .. } => "clr",
            LogPayload::PageFormat { .. } => "page-format",
            LogPayload::FullPageImage { .. } => "full-page-image",
            LogPayload::PriUpdate { .. } => "pri-update",
            LogPayload::BackupTaken { .. } => "backup-taken",
            LogPayload::CheckpointBegin { .. } => "checkpoint-begin",
            LogPayload::CheckpointEnd => "checkpoint-end",
        }
    }

    fn encode(&self, enc: &mut Encoder) {
        match self {
            LogPayload::TxBegin { system } => {
                enc.put_u8(Self::TAG_TX_BEGIN);
                enc.put_u8(u8::from(*system));
            }
            LogPayload::TxCommit { system } => {
                enc.put_u8(Self::TAG_TX_COMMIT);
                enc.put_u8(u8::from(*system));
            }
            LogPayload::TxAbort => enc.put_u8(Self::TAG_TX_ABORT),
            LogPayload::Update { op } => {
                enc.put_u8(Self::TAG_UPDATE);
                op.encode(enc);
            }
            LogPayload::Clr { op, undo_next } => {
                enc.put_u8(Self::TAG_CLR);
                enc.put_u64(undo_next.0);
                op.encode(enc);
            }
            LogPayload::PageFormat { image } => {
                enc.put_u8(Self::TAG_PAGE_FORMAT);
                image.encode(enc);
            }
            LogPayload::FullPageImage { image } => {
                enc.put_u8(Self::TAG_FULL_IMAGE);
                image.encode(enc);
            }
            LogPayload::PriUpdate { page_lsn, backup } => {
                enc.put_u8(Self::TAG_PRI_UPDATE);
                enc.put_u64(page_lsn.0);
                backup.encode(enc);
            }
            LogPayload::BackupTaken { backup, page_lsn } => {
                enc.put_u8(Self::TAG_BACKUP_TAKEN);
                enc.put_u64(page_lsn.0);
                backup.encode(enc);
            }
            LogPayload::CheckpointBegin {
                active_txns,
                dirty_pages,
            } => {
                enc.put_u8(Self::TAG_CKPT_BEGIN);
                enc.put_varint(active_txns.len() as u64);
                for (tx, lsn) in active_txns {
                    enc.put_u64(tx.0);
                    enc.put_u64(lsn.0);
                }
                enc.put_varint(dirty_pages.len() as u64);
                for (page, lsn) in dirty_pages {
                    enc.put_u64(page.0);
                    enc.put_u64(lsn.0);
                }
            }
            LogPayload::CheckpointEnd => enc.put_u8(Self::TAG_CKPT_END),
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            Self::TAG_TX_BEGIN => Ok(LogPayload::TxBegin {
                system: dec.get_u8()? != 0,
            }),
            Self::TAG_TX_COMMIT => Ok(LogPayload::TxCommit {
                system: dec.get_u8()? != 0,
            }),
            Self::TAG_TX_ABORT => Ok(LogPayload::TxAbort),
            Self::TAG_UPDATE => Ok(LogPayload::Update {
                op: PageOp::decode(dec)?,
            }),
            Self::TAG_CLR => {
                let undo_next = Lsn(dec.get_u64()?);
                let op = PageOp::decode(dec)?;
                Ok(LogPayload::Clr { op, undo_next })
            }
            Self::TAG_PAGE_FORMAT => Ok(LogPayload::PageFormat {
                image: CompressedPageImage::decode(dec)?,
            }),
            Self::TAG_FULL_IMAGE => Ok(LogPayload::FullPageImage {
                image: CompressedPageImage::decode(dec)?,
            }),
            Self::TAG_PRI_UPDATE => {
                let page_lsn = Lsn(dec.get_u64()?);
                let backup = BackupRef::decode(dec)?;
                Ok(LogPayload::PriUpdate { page_lsn, backup })
            }
            Self::TAG_BACKUP_TAKEN => {
                let page_lsn = Lsn(dec.get_u64()?);
                let backup = BackupRef::decode(dec)?;
                Ok(LogPayload::BackupTaken { backup, page_lsn })
            }
            Self::TAG_CKPT_BEGIN => {
                let n_tx = dec.get_varint()? as usize;
                if n_tx > 1 << 20 {
                    return Err(DecodeError::LengthOutOfRange {
                        got: n_tx,
                        max: 1 << 20,
                    });
                }
                let mut active_txns = Vec::with_capacity(n_tx);
                for _ in 0..n_tx {
                    active_txns.push((TxId(dec.get_u64()?), Lsn(dec.get_u64()?)));
                }
                let n_dp = dec.get_varint()? as usize;
                if n_dp > 1 << 24 {
                    return Err(DecodeError::LengthOutOfRange {
                        got: n_dp,
                        max: 1 << 24,
                    });
                }
                let mut dirty_pages = Vec::with_capacity(n_dp);
                for _ in 0..n_dp {
                    dirty_pages.push((PageId(dec.get_u64()?), Lsn(dec.get_u64()?)));
                }
                Ok(LogPayload::CheckpointBegin {
                    active_txns,
                    dirty_pages,
                })
            }
            Self::TAG_CKPT_END => Ok(LogPayload::CheckpointEnd),
            tag => Err(DecodeError::InvalidTag {
                tag,
                what: "LogPayload",
            }),
        }
    }
}

/// A complete log record: header plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Owning transaction, or [`TxId::NONE`].
    pub tx_id: TxId,
    /// Per-transaction chain: the transaction's previous record.
    pub prev_tx_lsn: Lsn,
    /// The page this record concerns, or [`PageId::INVALID`].
    pub page_id: PageId,
    /// Per-page chain: the page's previous record (its PageLSN before
    /// this update was applied).
    pub prev_page_lsn: Lsn,
    /// The record body.
    pub payload: LogPayload,
}

impl LogRecord {
    /// Bytes of framing before the body: the `u32` body length and the
    /// `u32` checksum.
    pub const FRAME_BYTES: usize = 8;

    /// Total encoded length of the record whose encoding starts with
    /// `length_prefix` (its first four bytes). The framing rule lives
    /// here, next to `encode`/`decode`, so the log's probe and scan
    /// paths never re-derive it.
    #[must_use]
    pub fn framed_len(length_prefix: [u8; 4]) -> usize {
        Self::FRAME_BYTES + u32::from_le_bytes(length_prefix) as usize
    }

    /// Encodes the record, including length prefix and checksum.
    ///
    /// Single allocation: the header is emitted as placeholders, the
    /// body appended behind it, and length + checksum patched in place —
    /// this runs on every log append, so the extra buffer + copy of the
    /// obvious two-pass encoding is worth avoiding.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(128);
        enc.put_u32(0); // body length, patched below
        enc.put_u32(0); // crc32c, patched below
        enc.put_u64(self.tx_id.0);
        enc.put_u64(self.prev_tx_lsn.0);
        enc.put_u64(self.page_id.0);
        enc.put_u64(self.prev_page_lsn.0);
        self.payload.encode(&mut enc);
        let mut out = enc.finish();
        let body_len = (out.len() - 8) as u32;
        let crc = spf_util::crc32c(&out[8..]);
        out[..4].copy_from_slice(&body_len.to_le_bytes());
        out[4..8].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes one record from the start of `buf`, verifying its checksum.
    /// Returns the record and its total encoded length.
    pub fn decode(buf: &[u8]) -> Result<(LogRecord, usize), DecodeError> {
        let mut dec = Decoder::new(buf);
        let body_len = dec.get_u32()? as usize;
        let crc = dec.get_u32()?;
        let body = dec.get_bytes(body_len)?;
        if spf_util::crc32c(body) != crc {
            return Err(DecodeError::InvalidTag {
                tag: 0,
                what: "LogRecord checksum",
            });
        }
        let mut body_dec = Decoder::new(body);
        let tx_id = TxId(body_dec.get_u64()?);
        let prev_tx_lsn = Lsn(body_dec.get_u64()?);
        let page_id = PageId(body_dec.get_u64()?);
        let prev_page_lsn = Lsn(body_dec.get_u64()?);
        let payload = LogPayload::decode(&mut body_dec)?;
        Ok((
            LogRecord {
                tx_id,
                prev_tx_lsn,
                page_id,
                prev_page_lsn,
                payload,
            },
            Self::FRAME_BYTES + body_len,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_storage::{PageType, DEFAULT_PAGE_SIZE};

    fn round_trip(rec: &LogRecord) {
        let bytes = rec.encode();
        let (decoded, len) = LogRecord::decode(&bytes).expect("decode");
        assert_eq!(&decoded, rec);
        assert_eq!(len, bytes.len());
    }

    #[test]
    fn record_round_trips_all_payloads() {
        let page = Page::new_formatted(DEFAULT_PAGE_SIZE, PageId(3), PageType::BTreeLeaf);
        let image = CompressedPageImage::capture(&page);
        let payloads = vec![
            LogPayload::TxBegin { system: false },
            LogPayload::TxBegin { system: true },
            LogPayload::TxCommit { system: true },
            LogPayload::TxAbort,
            LogPayload::Update {
                op: PageOp::InsertRecord {
                    pos: 4,
                    bytes: b"hello".to_vec(),
                    ghost: false,
                },
            },
            LogPayload::Update {
                op: PageOp::ReplaceRecord {
                    pos: 2,
                    old_bytes: b"old".to_vec(),
                    new_bytes: b"new".to_vec(),
                },
            },
            LogPayload::Update {
                op: PageOp::SetGhost {
                    pos: 9,
                    old: false,
                    new: true,
                },
            },
            LogPayload::Update {
                op: PageOp::WriteStructure {
                    old: vec![0; 32],
                    new: vec![1; 32],
                },
            },
            LogPayload::Clr {
                op: PageOp::RemoveRecord {
                    pos: 1,
                    old_bytes: b"x".to_vec(),
                    old_ghost: true,
                },
                undo_next: Lsn(42),
            },
            LogPayload::PageFormat {
                image: image.clone(),
            },
            LogPayload::FullPageImage { image },
            LogPayload::PriUpdate {
                page_lsn: Lsn(77),
                backup: BackupRef::BackupPage(PageId(5)),
            },
            LogPayload::PriUpdate {
                page_lsn: Lsn(78),
                backup: BackupRef::LogImage(Lsn(12)),
            },
            LogPayload::BackupTaken {
                backup: BackupRef::FormatRecord(Lsn(8)),
                page_lsn: Lsn(9),
            },
            LogPayload::BackupTaken {
                backup: BackupRef::FullBackup {
                    first_slot: 3,
                    pages: 1000,
                },
                page_lsn: Lsn(11),
            },
            LogPayload::CheckpointBegin {
                active_txns: vec![(TxId(1), Lsn(10)), (TxId(2), Lsn(20))],
                dirty_pages: vec![(PageId(3), Lsn(5))],
            },
            LogPayload::CheckpointEnd,
        ];
        for payload in payloads {
            round_trip(&LogRecord {
                tx_id: TxId(9),
                prev_tx_lsn: Lsn(100),
                page_id: PageId(55),
                prev_page_lsn: Lsn(90),
                payload,
            });
        }
    }

    #[test]
    fn corrupted_record_fails_checksum() {
        let rec = LogRecord {
            tx_id: TxId(1),
            prev_tx_lsn: Lsn::NULL,
            page_id: PageId(2),
            prev_page_lsn: Lsn::NULL,
            payload: LogPayload::TxBegin { system: false },
        };
        let mut bytes = rec.encode();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert!(LogRecord::decode(&bytes).is_err());
    }

    #[test]
    fn page_op_redo_and_invert_are_inverse() {
        let mut page = Page::new_formatted(DEFAULT_PAGE_SIZE, PageId(1), PageType::BTreeLeaf);
        {
            let mut sp = SlottedPage::new(&mut page);
            sp.push(b"a", false).unwrap();
            sp.push(b"c", false).unwrap();
        }
        let before = page.clone();

        let ops = vec![
            PageOp::InsertRecord {
                pos: 1,
                bytes: b"b".to_vec(),
                ghost: false,
            },
            PageOp::ReplaceRecord {
                pos: 0,
                old_bytes: b"a".to_vec(),
                new_bytes: b"A!".to_vec(),
            },
            PageOp::SetGhost {
                pos: 1,
                old: false,
                new: true,
            },
            PageOp::WriteStructure {
                old: vec![0; 32],
                new: (0..32).collect(),
            },
        ];
        for op in ops {
            let mut p = before.clone();
            op.redo(&mut p);
            assert_ne!(
                p.as_bytes(),
                before.as_bytes(),
                "op must change the page: {op:?}"
            );
            op.invert().redo(&mut p);
            // Structural bytes may differ after insert+remove (heap_top moves,
            // fragmentation) but logical contents must match.
            let a = SlottedPage::new(&mut p);
            let got: Vec<(Vec<u8>, bool)> = a.iter().map(|(_, r, g)| (r.to_vec(), g)).collect();
            let mut b = before.clone();
            let bsp = SlottedPage::new(&mut b);
            let want: Vec<(Vec<u8>, bool)> = bsp.iter().map(|(_, r, g)| (r.to_vec(), g)).collect();
            assert_eq!(got, want, "invert must restore logical contents: {op:?}");
            assert_eq!(p.structure_area(), before.structure_area());
        }
    }

    #[test]
    fn compressed_image_round_trip_and_compression() {
        let mut page = Page::new_formatted(DEFAULT_PAGE_SIZE, PageId(44), PageType::BTreeLeaf);
        page.set_page_lsn(123);
        {
            let mut sp = SlottedPage::new(&mut page);
            for i in 0..20 {
                sp.push(format!("row-{i:03}").as_bytes(), false).unwrap();
            }
        }
        page.finalize_checksum();
        let image = CompressedPageImage::capture(&page);
        assert!(
            image.encoded_len() < DEFAULT_PAGE_SIZE / 4,
            "mostly-empty page must compress well, got {}",
            image.encoded_len()
        );
        let restored = image.restore();
        assert_eq!(
            restored.as_bytes(),
            page.as_bytes(),
            "restore must be byte-exact"
        );
    }

    #[test]
    fn compressed_image_of_full_page() {
        let mut page = Page::new_formatted(DEFAULT_PAGE_SIZE, PageId(44), PageType::BTreeLeaf);
        {
            let mut sp = SlottedPage::new(&mut page);
            while sp.push(&[0xCD; 64], false).is_ok() {}
        }
        page.finalize_checksum();
        let image = CompressedPageImage::capture(&page);
        assert_eq!(image.restore().as_bytes(), page.as_bytes());
    }

    #[test]
    fn payload_kind_names_are_stable() {
        assert_eq!(LogPayload::TxAbort.kind_name(), "tx-abort");
        assert_eq!(
            LogPayload::PriUpdate {
                page_lsn: Lsn(1),
                backup: BackupRef::None
            }
            .kind_name(),
            "pri-update"
        );
    }
}
