//! Durable backing for the log buffer: the [`LogSink`] trait and its
//! file-based implementation, [`WalFiles`].
//!
//! The in-memory [`SegmentedBuffer`](crate::segment) gives the log its
//! virtual address space; a sink makes the durable prefix *actually*
//! durable. The force path hands the sink each newly forced byte range
//! **before** publishing the new durable LSN, and a force does not
//! return until the sink's `sync` has — so `durable_lsn` never claims
//! more than the operating system has acknowledged to stable storage.
//! A process kill therefore loses exactly the unforced tail, which is
//! the contract every commit and write-back already assumes.
//!
//! [`WalFiles`] stores the log as numbered segment files in a
//! directory, each file named by the virtual offset of its first byte
//! (`{base:020}.wal`). Appends go to the newest file at the position
//! `at - base`, so a restart that discarded a torn tail simply
//! overwrites it in place. Rotation closes a file once it passes the
//! segment cap: the closed file is fsynced, and the directory is
//! fsynced after the successor is created so the new name itself is
//! durable. Log truncation unlinks files that lie wholly below the cut
//! — partial files are never rewritten, matching how real systems
//! recycle whole log segments.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

/// Destination for forced log bytes. Implementations must be safe to
/// call from whichever thread wins the group-commit leadership.
///
/// Errors are not survivable: a sink that cannot persist the log cannot
/// honour any durability promise, so the force path treats a sink error
/// as fatal (it panics rather than acknowledging a commit it did not
/// persist).
pub trait LogSink: Send + Sync {
    /// Writes `bytes` at virtual log offset `at`. Ranges arrive in
    /// order and contiguously from the durable end, except after a
    /// restart where the first append may overwrite a discarded torn
    /// tail in place.
    fn append(&self, at: u64, bytes: &[u8]) -> io::Result<()>;

    /// Durability barrier: returns once every appended byte is on
    /// stable storage.
    fn sync(&self) -> io::Result<()>;

    /// Releases storage below virtual offset `cut` (best effort; the
    /// sink may retain more).
    fn truncate_to(&self, cut: u64) -> io::Result<()>;
}

/// Default segment-file capacity. Segments rotate once they pass this
/// size; a single oversized append may overshoot it.
pub const DEFAULT_SEGMENT_BYTES: u64 = 256 * 1024;

/// A closed (rotated) segment file.
#[derive(Debug)]
struct Closed {
    base: u64,
    len: u64,
}

#[derive(Debug)]
struct Current {
    file: File,
    base: u64,
    len: u64,
}

#[derive(Debug)]
struct State {
    closed: Vec<Closed>,
    current: Option<Current>,
    /// Where the next segment starts when `current` is `None`.
    next_base: u64,
}

/// Directory of numbered WAL segment files (see the module docs).
#[derive(Debug)]
pub struct WalFiles {
    dir: PathBuf,
    segment_bytes: u64,
    state: Mutex<State>,
}

fn segment_name(base: u64) -> String {
    format!("{base:020}.wal")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(".wal")?;
    if stem.len() != 20 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

impl WalFiles {
    /// Creates an empty WAL directory with one empty segment starting
    /// at virtual offset `start` (the log's header length, so offset 0
    /// is never a record). Fails if the directory already holds
    /// segments.
    pub fn create(dir: &Path, start: u64) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        if fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .any(|e| parse_segment_name(&e.file_name().to_string_lossy()).is_some())
        {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("WAL directory {} already holds segments", dir.display()),
            ));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(dir.join(segment_name(start)))?;
        file.sync_all()?;
        sync_dir(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            state: Mutex::new(State {
                closed: Vec::new(),
                current: Some(Current {
                    file,
                    base: start,
                    len: 0,
                }),
                next_base: start,
            }),
        })
    }

    /// Opens an existing WAL directory, returning the handle, the
    /// virtual offset of the first stored byte, and every stored byte
    /// in log order. The caller (log restore) decides how much of the
    /// tail is a valid record stream; [`trim_to`](WalFiles::trim_to)
    /// then discards the rest physically.
    pub fn open(dir: &Path) -> io::Result<(Self, u64, Vec<u8>)> {
        let mut bases: Vec<u64> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_name(&e.file_name().to_string_lossy()))
            .collect();
        bases.sort_unstable();
        let Some(&first) = bases.first() else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no WAL segments in {}", dir.display()),
            ));
        };
        let mut bytes = Vec::new();
        let mut closed = Vec::new();
        let mut current = None;
        let mut expected = first;
        for (i, &base) in bases.iter().enumerate() {
            if base != expected {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL segment gap in {}: expected offset {expected}, found {base}",
                        dir.display()
                    ),
                ));
            }
            let last = i == bases.len() - 1;
            let mut file = OpenOptions::new()
                .read(true)
                .write(last)
                .open(dir.join(segment_name(base)))?;
            let len = file.metadata()?.len();
            file.read_to_end(&mut bytes)?;
            expected = base + len;
            if last {
                current = Some(Current { file, base, len });
            } else {
                closed.push(Closed { base, len });
            }
        }
        Ok((
            Self {
                dir: dir.to_path_buf(),
                segment_bytes: DEFAULT_SEGMENT_BYTES,
                state: Mutex::new(State {
                    closed,
                    current,
                    next_base: expected,
                }),
            },
            first,
            bytes,
        ))
    }

    /// Overrides the rotation threshold (tests use small segments to
    /// exercise rotation cheaply).
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// The backing directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Physically discards stored bytes at or above virtual offset
    /// `end` — the torn tail a restart's record walk rejected. Without
    /// this, stale bytes from before the crash could sit beyond the new
    /// logical end and be misread as records after a *second* crash.
    pub fn trim_to(&self, end: u64) -> io::Result<()> {
        let mut st = self.state.lock();
        if let Some(cur) = st.current.as_mut() {
            if end < cur.base + cur.len {
                let keep = end.saturating_sub(cur.base);
                cur.file.set_len(keep)?;
                cur.file.sync_all()?;
                cur.len = keep;
            }
        }
        st.next_base = st.next_base.min(end);
        Ok(())
    }

    /// Total stored bytes across all segment files (diagnostics).
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        let st = self.state.lock();
        st.closed.iter().map(|c| c.len).sum::<u64>() + st.current.as_ref().map_or(0, |c| c.len)
    }
}

impl LogSink for WalFiles {
    fn append(&self, at: u64, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock();
        if st.current.is_none() {
            // Previous append rotated; start the successor where the
            // log resumed (contiguity is the force path's invariant).
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(self.dir.join(segment_name(at)))?;
            // The new name must survive a crash before its bytes
            // matter, or open() would see a segment gap.
            sync_dir(&self.dir)?;
            st.current = Some(Current {
                file,
                base: at,
                len: 0,
            });
        }
        let cur = st.current.as_mut().expect("current segment exists");
        debug_assert!(
            at >= cur.base && at <= cur.base + cur.len,
            "non-contiguous WAL append: at={at}, segment [{}, {})",
            cur.base,
            cur.base + cur.len
        );
        let off = at - cur.base;
        cur.file.seek(SeekFrom::Start(off))?;
        cur.file.write_all(bytes)?;
        cur.len = cur.len.max(off + bytes.len() as u64);
        if cur.len >= self.segment_bytes {
            cur.file.sync_all()?;
            let closed = Closed {
                base: cur.base,
                len: cur.len,
            };
            st.next_base = closed.base + closed.len;
            st.closed.push(closed);
            st.current = None;
        }
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        let st = self.state.lock();
        if let Some(cur) = st.current.as_ref() {
            cur.file.sync_data()?;
        }
        Ok(())
    }

    fn truncate_to(&self, cut: u64) -> io::Result<()> {
        let mut st = self.state.lock();
        let mut removed = false;
        st.closed.retain(|c| {
            if c.base + c.len <= cut {
                let _ = fs::remove_file(self.dir.join(segment_name(c.base)));
                removed = true;
                false
            } else {
                true
            }
        });
        if removed {
            sync_dir(&self.dir)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempdir::TempDir;

    fn read_all(dir: &Path) -> (u64, Vec<u8>) {
        let (_, base, bytes) = WalFiles::open(dir).unwrap();
        (base, bytes)
    }

    #[test]
    fn append_sync_reopen_round_trips() {
        let tmp = TempDir::new("walfiles").unwrap();
        let dir = tmp.path().join("wal");
        let files = WalFiles::create(&dir, 16).unwrap();
        files.append(16, b"hello ").unwrap();
        files.append(22, b"world").unwrap();
        files.sync().unwrap();
        drop(files);
        let (base, bytes) = read_all(&dir);
        assert_eq!(base, 16);
        assert_eq!(bytes, b"hello world");
    }

    #[test]
    fn rotation_splits_into_numbered_files_and_reopen_concatenates() {
        let tmp = TempDir::new("walfiles").unwrap();
        let dir = tmp.path().join("wal");
        let files = WalFiles::create(&dir, 0).unwrap().with_segment_bytes(8);
        let mut expect = Vec::new();
        let mut at = 0u64;
        for i in 0u8..10 {
            let chunk = [i; 5];
            files.append(at, &chunk).unwrap();
            files.sync().unwrap();
            expect.extend_from_slice(&chunk);
            at += chunk.len() as u64;
        }
        drop(files);
        let names: Vec<u64> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| parse_segment_name(&e.unwrap().file_name().to_string_lossy()))
            .collect();
        assert!(names.len() > 1, "expected rotation, got {names:?}");
        let (base, bytes) = read_all(&dir);
        assert_eq!(base, 0);
        assert_eq!(bytes, expect);
    }

    #[test]
    fn trim_discards_tail_and_overwrite_in_place_works() {
        let tmp = TempDir::new("walfiles").unwrap();
        let dir = tmp.path().join("wal");
        let files = WalFiles::create(&dir, 0).unwrap();
        files.append(0, b"goodrecordTORNTA").unwrap();
        files.sync().unwrap();
        drop(files);
        let (files, base, bytes) = WalFiles::open(&dir).unwrap();
        assert_eq!((base, bytes.len()), (0, 16));
        // Restart decided only the first 10 bytes parse as records.
        files.trim_to(10).unwrap();
        files.append(10, b"NEW").unwrap();
        files.sync().unwrap();
        drop(files);
        let (_, bytes) = read_all(&dir);
        assert_eq!(bytes, b"goodrecordNEW");
    }

    #[test]
    fn truncate_to_unlinks_wholly_covered_segments() {
        let tmp = TempDir::new("walfiles").unwrap();
        let dir = tmp.path().join("wal");
        let files = WalFiles::create(&dir, 0).unwrap().with_segment_bytes(4);
        for i in 0u64..6 {
            files.append(i * 4, &[i as u8; 4]).unwrap();
        }
        files.sync().unwrap();
        files.truncate_to(9).unwrap();
        let mut names: Vec<u64> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| parse_segment_name(&e.unwrap().file_name().to_string_lossy()))
            .collect();
        names.sort_unstable();
        // Segments [0,4) and [4,8) are gone; [8,12) still holds byte 9.
        assert_eq!(names.first(), Some(&8));
        let (files, base, bytes) = WalFiles::open(&dir).unwrap();
        assert_eq!(base, 8);
        assert_eq!(bytes.len(), 16);
        drop(files);
    }

    #[test]
    fn create_refuses_nonempty_directory() {
        let tmp = TempDir::new("walfiles").unwrap();
        let dir = tmp.path().join("wal");
        WalFiles::create(&dir, 0).unwrap();
        assert!(WalFiles::create(&dir, 0).is_err());
    }
}
