//! The combined-force (group-commit) protocol.
//!
//! Every force request publishes its target LSN and then takes one of
//! three roles:
//!
//! * **no-op** — the target is already durable; return immediately;
//! * **leader** — no flush is in progress: perform one flush covering
//!   the *highest* target published so far (one sequential write for
//!   the whole batch), and keep flushing while new targets arrive;
//! * **waiter** — a leader is already flushing: sleep on the condvar
//!   until a flush covers the published target. N concurrent committers
//!   therefore pay ~1 flush instead of N.
//!
//! Before gathering its goal the leader yields once, giving committers
//! that are one instruction away from publishing their targets a
//! scheduler quantum to do so — the classic group-commit window, here a
//! single `yield_now` so an uncontended force stays cheap.
//!
//! This module owns only the state machine; the caller supplies the
//! flush itself (wait for buffer completeness, charge the simulated
//! clock, advance the durable boundary) as a closure, so the protocol
//! stays independent of buffer layout and cost model.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot`
//! stand-in exposes no condvar); poisoning is ignored, matching the
//! workspace's poison-free locking style.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// How a force request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Forced {
    /// The target was already durable; nothing happened.
    Noop(u64),
    /// A concurrent leader's flush covered the target while we waited.
    /// `token` is the attribution token the covering flush returned
    /// (the leader's `LogForce` trace-span id; 0 = none), so a
    /// follower's wait span can point at the exact force batch that
    /// made it durable.
    Absorbed {
        /// Durable end when the waiter woke.
        durable: u64,
        /// The covering flush's attribution token (0 = none).
        token: u64,
    },
    /// This request led one or more flushes; the final durable end.
    Led(u64),
}

impl Forced {
    /// The durable end after the request, whatever the role.
    pub(crate) fn durable(self) -> u64 {
        match self {
            Forced::Noop(d) | Forced::Absorbed { durable: d, .. } | Forced::Led(d) => d,
        }
    }
}

struct State {
    /// A leader is currently flushing.
    leader: bool,
    /// Highest target LSN any request has published.
    max_requested: u64,
    /// Durable end as of the last completed flush (mirrors the log's
    /// durable atomic; kept here so waiters can sleep on it).
    durable: u64,
    /// Requests currently blocked on the condvar.
    waiters: u64,
    /// Attribution token returned by the last completed flush (the
    /// leader's `LogForce` trace-span id; 0 = none).
    last_token: u64,
}

/// The group-force coordinator.
pub(crate) struct GroupForce {
    state: Mutex<State>,
    cv: Condvar,
}

impl GroupForce {
    pub(crate) fn new(durable: u64) -> Self {
        Self {
            state: Mutex::new(State {
                leader: false,
                max_requested: durable,
                durable,
                waiters: 0,
                last_token: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Makes everything up to `target` durable, combining with
    /// concurrent requests. `flush(from, to, batched)` performs the
    /// actual durability step for `[from, to)`; `batched` reports
    /// whether the flush covers more than this request alone (for
    /// telemetry). The value `flush` returns is an attribution token
    /// (the leader's `LogForce` trace-span id; 0 = none) handed to
    /// every waiter the flush absorbed.
    pub(crate) fn force_to(
        &self,
        target: u64,
        mut flush: impl FnMut(u64, u64, bool) -> u64,
    ) -> Forced {
        let mut st = self.lock();
        if st.durable >= target {
            return Forced::Noop(st.durable);
        }
        if target > st.max_requested {
            st.max_requested = target;
        }
        if st.leader {
            st.waiters += 1;
            while st.durable < target {
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            st.waiters -= 1;
            return Forced::Absorbed {
                durable: st.durable,
                token: st.last_token,
            };
        }
        st.leader = true;
        let mut durable = st.durable;
        drop(st);
        loop {
            // Group-commit window: one quantum for concurrent committers
            // to publish their targets before the goal is gathered.
            std::thread::yield_now();
            let goal;
            let batched;
            {
                let st = self.lock();
                goal = st.max_requested;
                batched = st.waiters > 0 || goal > target;
            }
            let token = flush(durable, goal, batched);
            durable = goal;
            let mut st = self.lock();
            st.durable = goal;
            st.last_token = token;
            self.cv.notify_all();
            if st.max_requested <= goal {
                st.leader = false;
                return Forced::Led(goal);
            }
            drop(st);
        }
    }

    /// Simulated crash: pending targets above the durable end can never
    /// be satisfied (their bytes are gone), so drop them. Must not race
    /// in-flight forces, like the crash itself.
    pub(crate) fn crash_reset(&self) {
        let mut st = self.lock();
        st.max_requested = st.max_requested.min(st.durable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};

    #[test]
    fn single_request_leads_exactly_one_flush() {
        let gf = GroupForce::new(0);
        let mut flushes = Vec::new();
        let out = gf.force_to(100, |from, to, batched| {
            flushes.push((from, to, batched));
            0
        });
        assert_eq!(out, Forced::Led(100));
        assert_eq!(flushes, vec![(0, 100, false)]);
        // Idempotent: already durable.
        assert_eq!(gf.force_to(100, |_, _, _| panic!("no flush")), {
            Forced::Noop(100)
        });
    }

    #[test]
    fn concurrent_requests_share_flushes() {
        const THREADS: usize = 8;
        let gf = Arc::new(GroupForce::new(0));
        let flushes = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(THREADS));
        std::thread::scope(|s| {
            for t in 1..=THREADS {
                let gf = Arc::clone(&gf);
                let flushes = Arc::clone(&flushes);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    let out = gf.force_to((t * 10) as u64, |_, to, _| {
                        flushes.fetch_add(1, Ordering::Relaxed);
                        to // token: identify the flush by its goal
                    });
                    assert!(out.durable() >= (t * 10) as u64);
                    if let Forced::Absorbed { durable, token } = out {
                        assert!(
                            token >= (t * 10) as u64 && token <= durable,
                            "absorbed waiter must carry the covering flush's token"
                        );
                    }
                });
            }
        });
        let n = flushes.load(Ordering::Relaxed);
        assert!(n >= 1, "someone must have flushed");
        assert!(n <= THREADS as u64, "never more flushes than requests");
        assert_eq!(gf.lock().durable, 80, "highest target durable");
        assert!(!gf.lock().leader);
        assert_eq!(gf.lock().waiters, 0);
    }

    #[test]
    fn flush_ranges_are_contiguous_and_monotone() {
        let gf = GroupForce::new(8);
        let mut prev_to = 8;
        for target in [50u64, 50, 120, 90, 300] {
            gf.force_to(target, |from, to, _| {
                assert_eq!(from, prev_to, "flush ranges must chain");
                assert!(to > from);
                prev_to = to;
                0
            });
        }
        assert_eq!(prev_to, 300);
    }

    #[test]
    fn crash_reset_drops_unreachable_targets() {
        let gf = GroupForce::new(40);
        {
            let mut st = gf.lock();
            st.max_requested = 400; // published, never flushed, now gone
        }
        gf.crash_reset();
        assert_eq!(gf.force_to(40, |_, _, _| panic!("nothing to do")), {
            Forced::Noop(40)
        });
    }
}
