//! End-to-end durability of the WAL through [`WalFiles`]: forced bytes
//! survive a "process kill" (dropping every in-memory structure and
//! reopening from the directory), unforced bytes do not, and a torn
//! tail — the file ending mid-record — is detected and discarded by
//! [`LogManager::restore`].

use std::sync::Arc;

use spf_storage::PageId;
use spf_util::{IoCostModel, SimClock};
use spf_wal::manager::make_record;
use spf_wal::record::PageOp;
use spf_wal::{LogManager, LogPayload, LogRecord, LogSink, Lsn, TxId, WalFiles};
use tempdir::TempDir;

fn update_record(tx: u64, prev_tx: Lsn, page: u64, prev_page: Lsn) -> LogRecord {
    make_record(
        TxId(tx),
        prev_tx,
        PageId(page),
        prev_page,
        LogPayload::Update {
            op: PageOp::InsertRecord {
                pos: 0,
                bytes: vec![tx as u8; 16],
                ghost: false,
            },
        },
    )
}

fn checkpoint_record() -> LogRecord {
    make_record(
        TxId(0),
        Lsn::NULL,
        PageId(u64::MAX),
        Lsn::NULL,
        LogPayload::CheckpointBegin {
            dirty_pages: Vec::new(),
            active_txns: Vec::new(),
        },
    )
}

fn fresh_log_with_files(dir: &std::path::Path) -> LogManager {
    let log = LogManager::for_testing();
    let files = WalFiles::create(dir, Lsn::FIRST.0).unwrap();
    log.set_sink(Arc::new(files));
    log
}

fn reopen(dir: &std::path::Path) -> (LogManager, Lsn) {
    let (files, base, bytes) = WalFiles::open(dir).unwrap();
    let (log, valid_end) =
        LogManager::restore(Arc::new(SimClock::new()), IoCostModel::free(), base, &bytes);
    files.trim_to(valid_end.0).unwrap();
    log.set_sink(Arc::new(files));
    (log, valid_end)
}

#[test]
fn forced_records_survive_reopen_unforced_do_not() {
    let tmp = TempDir::new("durable-log").unwrap();
    let dir = tmp.path().join("wal");
    let log = fresh_log_with_files(&dir);

    let a = log.append(&update_record(1, Lsn::NULL, 10, Lsn::NULL));
    let b = log.append(&update_record(1, a, 11, Lsn::NULL));
    log.force();
    let durable_end = log.durable_lsn();
    // Appended after the force: in the buffer, never in the files.
    let c = log.append(&update_record(2, Lsn::NULL, 12, Lsn::NULL));
    assert!(c >= durable_end);
    let rec_a = log.read_record(a).unwrap();
    let rec_b = log.read_record(b).unwrap();
    drop(log); // the "kill": no flush, no shutdown protocol

    let (log, valid_end) = reopen(&dir);
    assert_eq!(valid_end, durable_end, "recovers exactly the forced prefix");
    assert_eq!(log.durable_lsn(), durable_end);
    assert_eq!(log.read_record(a).unwrap(), rec_a);
    assert_eq!(log.read_record(b).unwrap(), rec_b);
    assert!(log.read_record(c).is_err(), "unforced record is gone");
}

#[test]
fn checkpoints_reindexed_and_appends_continue_after_reopen() {
    let tmp = TempDir::new("durable-log").unwrap();
    let dir = tmp.path().join("wal");
    let log = fresh_log_with_files(&dir);

    let a = log.append(&update_record(1, Lsn::NULL, 10, Lsn::NULL));
    let ckpt = log.append(&checkpoint_record());
    log.force();
    drop(log);

    let (log, _) = reopen(&dir);
    assert_eq!(log.last_checkpoint(), ckpt, "checkpoint index rebuilt");

    // The log keeps working: append, force, reopen again.
    let d = log.append(&update_record(3, Lsn::NULL, 13, a));
    log.force();
    let rec_d = log.read_record(d).unwrap();
    drop(log);
    let (log, _) = reopen(&dir);
    assert_eq!(log.read_record(d).unwrap(), rec_d);
    assert_eq!(log.last_checkpoint(), ckpt);
}

#[test]
fn torn_tail_is_detected_and_discarded() {
    let tmp = TempDir::new("durable-log").unwrap();
    let dir = tmp.path().join("wal");
    let log = fresh_log_with_files(&dir);

    let a = log.append(&update_record(1, Lsn::NULL, 10, Lsn::NULL));
    let b = log.append(&update_record(1, a, 11, Lsn::NULL));
    log.force();
    let durable_end = log.durable_lsn();
    drop(log);

    // Simulate a kill between the sink's append and its sync: some
    // bytes of the next record reached the file, but not all of it.
    let (files, base, bytes) = WalFiles::open(&dir).unwrap();
    let torn = update_record(2, Lsn::NULL, 12, Lsn::NULL).encode();
    files
        .append(base + bytes.len() as u64, &torn[..torn.len() / 2])
        .unwrap();
    files.sync().unwrap();
    drop(files);

    let (log, valid_end) = reopen(&dir);
    assert_eq!(valid_end, durable_end, "torn record rejected");
    assert_eq!(
        log.read_record(b).unwrap(),
        update_record(1, a, 11, Lsn::NULL)
    );

    // A fresh append lands where the torn record was and overwrites it.
    let d = log.append(&update_record(4, Lsn::NULL, 14, Lsn::NULL));
    assert_eq!(d, durable_end);
    log.force();
    drop(log);
    let (log, _) = reopen(&dir);
    assert_eq!(
        log.read_record(d).unwrap(),
        update_record(4, Lsn::NULL, 14, Lsn::NULL)
    );
}

#[test]
fn truncation_unlinks_old_segments_and_reopen_starts_at_new_base() {
    let tmp = TempDir::new("durable-log").unwrap();
    let dir = tmp.path().join("wal");
    let log = LogManager::for_testing();
    let files = WalFiles::create(&dir, Lsn::FIRST.0)
        .unwrap()
        .with_segment_bytes(128);
    log.set_sink(Arc::new(files));

    let mut prev = Lsn::NULL;
    let mut lsns = Vec::new();
    for i in 0..20 {
        let lsn = log.append(&update_record(1, prev, 10 + i, Lsn::NULL));
        prev = lsn;
        lsns.push(lsn);
        log.force();
    }
    let cut = lsns[10];
    log.set_archive_watermark(cut);
    let dropped = log.truncate_until(cut).unwrap();
    assert!(dropped > 0);
    drop(log);

    let (log, _) = reopen(&dir);
    assert!(log.read_record(lsns[5]).is_err(), "below the new base");
    for &lsn in &lsns[10..] {
        assert!(log.read_record(lsn).is_ok(), "retained record at {lsn:?}");
    }
}
