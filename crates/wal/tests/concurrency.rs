//! Multi-threaded stress tests for the reservation-based segmented log
//! and the group-commit force path, mirroring the buffer pool's suite.
//!
//! The concurrency contract pinned down here:
//!
//! * racing appenders receive unique, **densely packed** LSNs — every
//!   byte between the log header and the appended end belongs to
//!   exactly one record;
//! * a reader through `scan_records` never observes a torn record, no
//!   matter how the scan races the appenders (the scanner bounds itself
//!   by the contiguously complete watermark);
//! * N concurrent committers combine into fewer than N log flushes
//!   (group commit), and the force telemetry reconciles;
//! * the WAL-before-page-write rule holds while buffer-pool write-back
//!   races committers on the shared combined-force path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use spf_buffer::{BufferPool, BufferPoolConfig, WriteObserver};
use spf_storage::{MemDevice, Page, PageId, PageType, DEFAULT_PAGE_SIZE};
use spf_wal::{LogManager, LogPayload, LogRecord, Lsn, PageOp, TxId};

fn update_record(tx: u64, page: u64, body: usize) -> LogRecord {
    LogRecord {
        tx_id: TxId(tx),
        prev_tx_lsn: Lsn::NULL,
        page_id: PageId(page),
        prev_page_lsn: Lsn::NULL,
        payload: LogPayload::Update {
            op: PageOp::InsertRecord {
                pos: 0,
                bytes: vec![tx as u8; body],
                ghost: false,
            },
        },
    }
}

/// Racing appenders must carve the virtual byte sequence into unique,
/// gap-free records: sorting everyone's `(lsn, len)` pairs must tile
/// `[FIRST, end)` exactly.
#[test]
fn racing_appenders_get_unique_densely_packed_lsns() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 1_000;
    let log = LogManager::for_testing();
    let barrier = Barrier::new(THREADS);

    let mut per_thread: Vec<Vec<(Lsn, u64)>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let log = log.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    let mut out = Vec::with_capacity(PER_THREAD);
                    barrier.wait();
                    for i in 0..PER_THREAD {
                        // Vary the record size so reservations interleave
                        // at odd offsets and straddle segment boundaries.
                        let rec = update_record(t as u64 + 1, i as u64 % 16, 1 + (i % 97));
                        let len = rec.encode().len() as u64;
                        out.push((log.append(&rec), len));
                    }
                    out
                })
            })
            .collect();
        per_thread = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });

    let mut all: Vec<(Lsn, u64)> = per_thread.into_iter().flatten().collect();
    assert_eq!(all.len(), THREADS * PER_THREAD);
    all.sort_unstable_by_key(|(lsn, _)| *lsn);
    let mut expect = Lsn::FIRST;
    for &(lsn, len) in &all {
        assert_eq!(
            lsn, expect,
            "records must tile the log densely: gap or overlap at {lsn}"
        );
        expect = Lsn(lsn.0 + len);
    }
    assert_eq!(expect, log.end_lsn(), "last record ends exactly at the end");
    let stats = log.stats();
    assert_eq!(stats.records_appended, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.bytes_appended, log.end_lsn().0 - Lsn::FIRST.0);

    // Every record reads back intact through the random-access path.
    for &(lsn, _) in all.iter().step_by(317) {
        assert!(log.read_record(lsn).is_ok(), "record at {lsn} readable");
    }
}

/// A scanner racing appenders must never surface a torn or half-copied
/// record: every item is `Ok` and scans only grow.
#[test]
fn scan_never_observes_a_torn_record() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 2_000;
    let log = LogManager::for_testing();
    let done = AtomicBool::new(false);
    // Appenders + scanner + the coordinating main thread.
    let barrier = Barrier::new(THREADS + 2);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let log = log.clone();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    log.append(&update_record(t as u64 + 1, i as u64 % 8, 1 + (i % 61)));
                }
            });
        }
        let scan_log = log.clone();
        let done = &done;
        let barrier = &barrier;
        s.spawn(move || {
            barrier.wait();
            let mut last_seen = 0usize;
            loop {
                let finished = done.load(Ordering::Acquire);
                let mut seen = 0usize;
                for item in scan_log.scan_records(Lsn::NULL).unwrap() {
                    let (lsn, record) = item.expect("scan must never observe a torn record");
                    assert!(lsn.is_valid());
                    assert!(
                        matches!(record.payload, LogPayload::Update { .. }),
                        "decoded garbage"
                    );
                    seen += 1;
                }
                assert!(seen >= last_seen, "a later scan can only see more");
                last_seen = seen;
                if finished {
                    assert_eq!(seen, THREADS * PER_THREAD, "final scan sees every record");
                    break;
                }
            }
        });
        // Appenders are the first THREADS spawns; when they are done, let
        // the scanner run one final full pass.
        // (scope joins appenders when their closures return; the flag
        // flip below races only the scanner, which re-checks.)
        barrier.wait();
        // Wait for the appenders by re-scanning ourselves.
        while log.stats().records_appended < (THREADS * PER_THREAD) as u64 {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
    });
}

/// N concurrent committers through the transaction manager: durability
/// for every commit, strictly fewer flushes than commits is allowed and
/// expected (group commit), and the telemetry reconciles.
#[test]
fn concurrent_committers_share_group_commit_flushes() {
    use spf_txn::{TxKind, TxnManager};

    const THREADS: usize = 8;
    const COMMITS: usize = 60;
    let log = LogManager::for_testing();
    let mgr = TxnManager::new(log.clone());
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let mgr = mgr.clone();
            let log = log.clone();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..COMMITS {
                    let tx = mgr.begin(TxKind::User);
                    mgr.log_update(
                        tx,
                        PageId(t as u64),
                        Lsn::NULL,
                        PageOp::InsertRecord {
                            pos: 0,
                            bytes: vec![i as u8; 24],
                            ghost: false,
                        },
                    )
                    .unwrap();
                    let commit_lsn = mgr.commit(tx).unwrap();
                    assert!(
                        log.durable_lsn() > commit_lsn,
                        "commit must not return before its record is durable"
                    );
                }
            });
        }
    });

    let commits = (THREADS * COMMITS) as u64;
    let stats = log.stats();
    assert_eq!(mgr.stats().user_commits, commits);
    assert!(stats.forces >= 1);
    assert!(
        stats.forces <= commits,
        "group commit must never flush more often than commits: {} > {commits}",
        stats.forces
    );
    assert!(
        stats.force_waiters_absorbed < commits,
        "every force session has a non-absorbed leader"
    );
    assert!(
        stats.force_batches <= stats.forces,
        "a batch is a kind of flush"
    );
    // The globally last record is some thread's final commit, and its
    // force covers everything before it: the log ends durable.
    assert_eq!(log.durable_lsn(), log.end_lsn());
    // Every durable byte was flushed exactly once, whoever led.
    assert_eq!(stats.bytes_forced, log.durable_lsn().0 - Lsn::FIRST.0);
    assert!(stats.bytes_per_force() > 0.0);
}

/// Write observer asserting the WAL rule at the exact point the pool is
/// about to write the page image: everything up to the page's PageLSN
/// must already be durable.
struct WalRuleObserver {
    log: LogManager,
    checked: AtomicU64,
}

impl WriteObserver for WalRuleObserver {
    fn before_page_write(&self, page: &mut Page) {
        let durable = self.log.durable_lsn();
        assert!(
            durable.0 > page.page_lsn(),
            "WAL rule violated: writing page with PageLSN {} while durable end is {durable}",
            page.page_lsn()
        );
        self.checked.fetch_add(1, Ordering::Relaxed);
    }
}

/// Buffer-pool write-back (force_through + device write) racing user
/// commits on the shared combined-force path: the write-ahead rule must
/// hold for every page image that reaches the device.
#[test]
fn wal_rule_holds_when_write_back_races_group_commit() {
    use spf_txn::{TxKind, TxnManager};

    const WRITERS: usize = 4;
    const COMMITTERS: usize = 4;
    const OPS: usize = 150;
    const PAGES: u64 = 32;

    let device = MemDevice::for_testing(DEFAULT_PAGE_SIZE, PAGES);
    for i in 0..PAGES {
        let mut p = Page::new_formatted(DEFAULT_PAGE_SIZE, PageId(i), PageType::BTreeLeaf);
        p.finalize_checksum();
        device.raw_overwrite(PageId(i), p.as_bytes());
    }
    let log = LogManager::for_testing();
    // Far fewer frames than pages: constant eviction write-back.
    let pool = BufferPool::new(
        BufferPoolConfig { frames: 8 },
        Arc::new(device.clone()),
        log.clone(),
    );
    let observer = Arc::new(WalRuleObserver {
        log: log.clone(),
        checked: AtomicU64::new(0),
    });
    pool.set_observer(Arc::clone(&observer) as _);
    let mgr = TxnManager::new(log.clone());
    let barrier = Barrier::new(WRITERS + COMMITTERS);

    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let pool = pool.clone();
            let log = log.clone();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..OPS {
                    let id = PageId(((t * 31 + i * 7) as u64) % PAGES);
                    let Ok(mut g) = pool.fetch_mut(id) else {
                        continue; // transiently out of frames
                    };
                    // Log first, then update the page under the latch —
                    // the WAL discipline every caller follows.
                    let lsn = log.append(&update_record(t as u64 + 1, id.0, 16));
                    g.mark_dirty(lsn);
                    drop(g);
                    if i % 13 == 0 {
                        pool.flush_page(id).expect("flush_page");
                    }
                }
            });
        }
        for t in 0..COMMITTERS {
            let mgr = mgr.clone();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..OPS {
                    let tx = mgr.begin(TxKind::User);
                    mgr.log_update(
                        tx,
                        PageId((t as u64 + 17) % PAGES),
                        Lsn::NULL,
                        PageOp::InsertRecord {
                            pos: 0,
                            bytes: vec![i as u8; 8],
                            ghost: false,
                        },
                    )
                    .unwrap();
                    mgr.commit(tx).unwrap();
                }
            });
        }
    });

    pool.flush_all().expect("flush_all");
    assert!(
        observer.checked.load(Ordering::Relaxed) > 0,
        "write-backs must actually have run"
    );
    // Nothing volatile below any written page: a crash now loses no
    // page's history.
    let durable = log.crash();
    assert_eq!(durable, log.durable_lsn());
}
