//! Hierarchical metrics snapshot with JSON and Prometheus exposition.
//!
//! Subsystems keep their existing atomic stats structs; at snapshot
//! time each one flattens itself into named [`Metric`]s via the
//! [`Observable`] trait. The group name is supplied at `add()` time by
//! the caller, because one stats type can back several instances (the
//! primary and backup devices both expose `DeviceStats`).

use std::fmt::Write as _;

use crate::hist::HistogramSnapshot;

/// A single metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Instantaneous level.
    Gauge(u64),
    /// Latency distribution summary.
    Histogram(HistogramSnapshot),
}

/// A named metric inside a group.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric name (snake_case, unique within its group).
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A named group of metrics (one per subsystem instance).
#[derive(Debug, Clone)]
pub struct MetricGroup {
    /// Group name (e.g. `pool`, `wal`, `device`, `backup_device`).
    pub name: String,
    /// Metrics in registration order.
    pub metrics: Vec<Metric>,
}

/// Collects metrics from one subsystem during a snapshot.
#[derive(Debug, Default)]
pub struct GroupBuilder {
    metrics: Vec<Metric>,
}

impl GroupBuilder {
    /// Adds a monotone counter.
    pub fn counter(&mut self, name: &str, v: u64) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            value: MetricValue::Counter(v),
        });
        self
    }

    /// Adds an instantaneous gauge.
    pub fn gauge(&mut self, name: &str, v: u64) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            value: MetricValue::Gauge(v),
        });
        self
    }

    /// Adds a histogram summary.
    pub fn histogram(&mut self, name: &str, s: HistogramSnapshot) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            value: MetricValue::Histogram(s),
        });
        self
    }
}

/// Anything that can flatten itself into a metric group. Implemented by
/// every subsystem's stats snapshot struct.
pub trait Observable {
    /// Writes this subsystem's metrics into `g`.
    fn observe(&self, g: &mut GroupBuilder);
}

/// A hierarchical point-in-time view of every registered stats source.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Groups in registration order.
    pub groups: Vec<MetricGroup>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Flattens `source` into a group named `name`.
    pub fn add(&mut self, name: &str, source: &dyn Observable) {
        let mut g = GroupBuilder::default();
        source.observe(&mut g);
        self.groups.push(MetricGroup {
            name: name.to_string(),
            metrics: g.metrics,
        });
    }

    /// Looks up `group.metric`, returning the scalar value (histograms
    /// return their count). `None` when absent.
    #[must_use]
    pub fn get(&self, group: &str, metric: &str) -> Option<u64> {
        let g = self.groups.iter().find(|g| g.name == group)?;
        let m = g.metrics.iter().find(|m| m.name == metric)?;
        Some(match m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => v,
            MetricValue::Histogram(h) => h.count,
        })
    }

    /// Looks up a histogram metric's full summary.
    #[must_use]
    pub fn get_histogram(&self, group: &str, metric: &str) -> Option<HistogramSnapshot> {
        let g = self.groups.iter().find(|g| g.name == group)?;
        g.metrics.iter().find_map(|m| match (&m.name, m.value) {
            (n, MetricValue::Histogram(h)) if n == metric => Some(h),
            _ => None,
        })
    }

    /// Total metric count across all groups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.iter().map(|g| g.metrics.len()).sum()
    }

    /// True when no group holds any metric.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the snapshot as a JSON object: one key per group, each a
    /// nested object; histograms become `{count,sum,max,p50,p95,p99}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (gi, g) in self.groups.iter().enumerate() {
            if gi > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{{", g.name);
            for (mi, m) in g.metrics.iter().enumerate() {
                if mi > 0 {
                    s.push(',');
                }
                match m.value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                        let _ = write!(s, "\"{}\":{}", m.name, v);
                    }
                    MetricValue::Histogram(h) => {
                        let _ = write!(
                            s,
                            "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                            m.name, h.count, h.sum, h.max, h.p50, h.p95, h.p99
                        );
                    }
                }
            }
            s.push('}');
        }
        s.push('}');
        s
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Metric names are `spf_<group>_<name>`; histogram summaries expose
    /// `_count`, `_sum`, and quantile series tagged with a label.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for g in &self.groups {
            for m in &g.metrics {
                let base = format!("spf_{}_{}", g.name, m.name);
                match m.value {
                    MetricValue::Counter(v) => {
                        let _ = writeln!(s, "# TYPE {base} counter");
                        let _ = writeln!(s, "{base} {v}");
                    }
                    MetricValue::Gauge(v) => {
                        let _ = writeln!(s, "# TYPE {base} gauge");
                        let _ = writeln!(s, "{base} {v}");
                    }
                    MetricValue::Histogram(h) => {
                        let _ = writeln!(s, "# TYPE {base} summary");
                        let _ = writeln!(s, "{base}_count {}", h.count);
                        let _ = writeln!(s, "{base}_sum {}", h.sum);
                        let _ = writeln!(s, "{base}{{quantile=\"0.5\"}} {}", h.p50);
                        let _ = writeln!(s, "{base}{{quantile=\"0.95\"}} {}", h.p95);
                        let _ = writeln!(s, "{base}{{quantile=\"0.99\"}} {}", h.p99);
                        let _ = writeln!(s, "{base}{{quantile=\"1\"}} {}", h.max);
                    }
                }
            }
        }
        s
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse-validates Prometheus text exposition as produced by
/// [`MetricsSnapshot::to_prometheus`]: every line is either a `# TYPE`
/// declaration or a `name[{labels}] value` sample, every sample belongs
/// to a family declared exactly once before it, and every `summary`
/// family exposes `_count`, `_sum`, and at least one quantile series.
/// Returns the first violation. Used by the serialization tests and
/// available to scrape-endpoint smoke checks.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut families: Vec<(String, String)> = Vec::new(); // (name, type)
    let mut sampled: Vec<(String, bool, bool, bool)> = Vec::new(); // (family, count, sum, quantile)
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let (Some(name), Some(ty), None) = (it.next(), it.next(), it.next()) else {
                return Err(format!("line {ln}: malformed TYPE line {line:?}"));
            };
            if !valid_metric_name(name) {
                return Err(format!("line {ln}: invalid family name {name:?}"));
            }
            if !matches!(ty, "counter" | "gauge" | "summary") {
                return Err(format!("line {ln}: unknown metric type {ty:?}"));
            }
            if families.iter().any(|(n, _)| n == name) {
                return Err(format!("line {ln}: family {name:?} declared twice"));
            }
            families.push((name.to_string(), ty.to_string()));
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {ln}: unexpected comment {line:?}"));
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {ln}: sample without value {line:?}"));
        };
        if value.parse::<f64>().is_err() {
            return Err(format!("line {ln}: unparseable value {value:?}"));
        }
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let Some(labels) = rest.strip_suffix('}') else {
                    return Err(format!("line {ln}: unterminated label set {series:?}"));
                };
                (name, Some(labels))
            }
            None => (series, None),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {ln}: invalid metric name {name:?}"));
        }
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(format!("line {ln}: malformed label {pair:?}"));
                };
                if !valid_metric_name(k) || !v.starts_with('"') || !v.ends_with('"') {
                    return Err(format!("line {ln}: malformed label {pair:?}"));
                }
            }
        }
        // Resolve the family: the name itself, or name minus a summary
        // suffix. The family must have been declared above this sample.
        let family = families
            .iter()
            .find(|(n, _)| {
                n == name
                    || (name.strip_suffix("_count") == Some(n))
                    || (name.strip_suffix("_sum") == Some(n))
            })
            .cloned();
        let Some((family, ty)) = family else {
            return Err(format!(
                "line {ln}: sample {name:?} has no TYPE declaration"
            ));
        };
        if family != name && (name.ends_with("_count") || name.ends_with("_sum")) && ty != "summary"
        {
            return Err(format!(
                "line {ln}: suffixed sample {name:?} on non-summary family {family:?}"
            ));
        }
        let entry = match sampled.iter_mut().find(|(f, ..)| *f == family) {
            Some(e) => e,
            None => {
                sampled.push((family.clone(), false, false, false));
                sampled.last_mut().expect("just pushed")
            }
        };
        if name.strip_suffix("_count") == Some(family.as_str()) {
            entry.1 = true;
        } else if name.strip_suffix("_sum") == Some(family.as_str()) {
            entry.2 = true;
        } else if labels.is_some_and(|l| l.contains("quantile=")) {
            entry.3 = true;
        }
    }
    for (name, ty) in &families {
        if ty == "summary" {
            let Some((_, count, sum, quantile)) = sampled.iter().find(|(f, ..)| f == name) else {
                return Err(format!("summary family {name:?} has no samples"));
            };
            if !count || !sum || !quantile {
                return Err(format!(
                    "summary family {name:?} missing _count/_sum/quantile series \
                     (count={count}, sum={sum}, quantile={quantile})"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl Observable for Fake {
        fn observe(&self, g: &mut GroupBuilder) {
            g.counter("hits", 10).gauge("resident", 3).histogram(
                "latency",
                HistogramSnapshot {
                    count: 2,
                    sum: 30,
                    max: 20,
                    p50: 10,
                    p95: 20,
                    p99: 20,
                },
            );
        }
    }

    #[test]
    fn add_and_get() {
        let mut snap = MetricsSnapshot::new();
        snap.add("pool", &Fake);
        snap.add("pool2", &Fake);
        assert_eq!(snap.get("pool", "hits"), Some(10));
        assert_eq!(snap.get("pool2", "resident"), Some(3));
        assert_eq!(snap.get("pool", "latency"), Some(2));
        assert_eq!(snap.get("pool", "nope"), None);
        assert_eq!(snap.get_histogram("pool", "latency").unwrap().p95, 20);
        assert_eq!(snap.len(), 6);
    }

    #[test]
    fn json_is_well_formed() {
        let mut snap = MetricsSnapshot::new();
        snap.add("pool", &Fake);
        let j = snap.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"pool\":{"));
        assert!(j.contains("\"hits\":10"));
        assert!(j.contains("\"latency\":{\"count\":2"));
        // Balanced braces and no trailing commas.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",}"));
    }

    #[test]
    fn prometheus_exposition() {
        let mut snap = MetricsSnapshot::new();
        snap.add("pool", &Fake);
        let p = snap.to_prometheus();
        assert!(p.contains("# TYPE spf_pool_hits counter"));
        assert!(p.contains("spf_pool_hits 10"));
        assert!(p.contains("# TYPE spf_pool_resident gauge"));
        assert!(p.contains("spf_pool_latency{quantile=\"0.99\"} 20"));
        assert!(p.contains("spf_pool_latency_count 2"));
    }

    #[test]
    fn prometheus_output_parse_validates() {
        let mut snap = MetricsSnapshot::new();
        snap.add("pool", &Fake);
        snap.add("wal", &Fake);
        validate_prometheus(&snap.to_prometheus()).expect("exposition must parse");
    }

    #[test]
    fn validator_rejects_malformed_exposition() {
        // A sample with no TYPE declaration.
        assert!(validate_prometheus("spf_pool_hits 10\n").is_err());
        // A duplicate family declaration.
        assert!(
            validate_prometheus("# TYPE spf_x counter\n# TYPE spf_x counter\nspf_x 1\n").is_err()
        );
        // A summary without its _count/_sum series.
        assert!(
            validate_prometheus("# TYPE spf_lat summary\nspf_lat{quantile=\"0.5\"} 1\n").is_err()
        );
        // An unparseable value.
        assert!(validate_prometheus("# TYPE spf_x gauge\nspf_x banana\n").is_err());
        // An unterminated label set.
        assert!(validate_prometheus("# TYPE spf_x gauge\nspf_x{quantile=\"1\" 2\n").is_err());
        // A well-formed summary passes.
        validate_prometheus(
            "# TYPE spf_lat summary\nspf_lat_count 2\nspf_lat_sum 30\n\
             spf_lat{quantile=\"0.5\"} 10\n",
        )
        .expect("well-formed summary");
    }
}
