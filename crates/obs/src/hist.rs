//! Log-linear latency histograms with near-zero hot-path cost.
//!
//! A [`Histogram`] buckets `u64` nanosecond samples into 16 linear
//! sub-buckets per power of two (HdrHistogram's layout at 4 significant
//! bits), so any quantile is reported with ≤ 1/16 ≈ 6% relative error.
//! Storage is striped: each recording thread lands on its own stripe of
//! buckets, so `record` is one `leading_zeros` plus two relaxed atomic
//! adds to cache lines no other thread is writing — cheap enough to sit
//! on the commit and buffer-miss paths under full concurrency. Snapshots
//! merge the stripes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Sub-buckets per octave (2^4 — four significant bits of precision).
const SUB: usize = 16;
/// log2 of [`SUB`].
const SUB_BITS: u32 = 4;
/// Values at or above `2^MAX_EXP` ns (~18 minutes) clamp into the last
/// bucket; latencies that large are a bug, not a distribution.
const MAX_EXP: u32 = 40;
/// Bucket count: `SUB` linear buckets below `SUB`, then `SUB` per octave.
const BUCKETS: usize = SUB + (MAX_EXP as usize - SUB_BITS as usize) * SUB;
/// Contention-avoidance stripes (power of two). Threads are spread
/// round-robin, so with typical thread counts each writer owns a stripe.
const STRIPES: usize = 16;

/// Maps a sample to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = (63 - v.leading_zeros()).min(MAX_EXP - 1);
    let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB - 1);
    SUB + (exp - SUB_BITS) as usize * SUB + sub
}

/// The lower edge of bucket `idx` (its representative value when
/// reporting quantiles — conservative, never over-reports).
fn bucket_floor(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let exp = SUB_BITS + ((idx - SUB) / SUB) as u32;
    let sub = ((idx - SUB) % SUB) as u64;
    (1u64 << exp) + (sub << (exp - SUB_BITS))
}

/// One thread-affine shard of the histogram. Cache-line aligned so
/// adjacent stripes' hot words never share a line.
#[derive(Debug)]
#[repr(align(64))]
struct Stripe {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Round-robin stripe assignment; shared by all histograms so a thread
/// resolves its stripe once, not once per histogram.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
}

/// A concurrent log-linear histogram of nanosecond samples.
#[derive(Debug)]
pub struct Histogram {
    stripes: Vec<Stripe>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            stripes: (0..STRIPES).map(|_| Stripe::new()).collect(),
        }
    }

    /// Records one sample (nanoseconds). Lock-free and cheap enough for
    /// the commit path: two relaxed adds to this thread's stripe (the
    /// sample count is derived from the buckets at snapshot time) and a
    /// max RMW only when the sample is a new stripe maximum.
    pub fn record(&self, nanos: u64) {
        let s = &self.stripes[MY_STRIPE.with(|s| *s)];
        s.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(nanos, Ordering::Relaxed);
        if nanos > s.max.load(Ordering::Relaxed) {
            s.max.fetch_max(nanos, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.stripes
            .iter()
            .flat_map(|s| s.buckets.iter())
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshots the distribution (p50/p95/p99/max and totals).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Merge the stripes into one local view and derive both the
        // count and the quantiles from it, so the ranks are always
        // consistent with the walk even while writers keep recording.
        let mut counts = vec![0u64; BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for stripe in &self.stripes {
            for (c, b) in counts.iter_mut().zip(stripe.buckets.iter()) {
                *c += b.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(stripe.sum.load(Ordering::Relaxed));
            max = max.max(stripe.max.load(Ordering::Relaxed));
        }
        let count: u64 = counts.iter().sum();
        let mut snap = HistogramSnapshot {
            count,
            sum,
            max,
            p50: 0,
            p95: 0,
            p99: 0,
        };
        if count == 0 {
            return snap;
        }
        // One walk resolves all three quantiles: a quantile's value is
        // the floor of the bucket where the running count first reaches
        // q * count (ranks are 1-based so p100 would be the last sample).
        let rank = |q: f64| ((q * count as f64).ceil() as u64).clamp(1, count);
        let (r50, r95, r99) = (rank(0.50), rank(0.95), rank(0.99));
        let mut seen = 0u64;
        for (idx, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let floor = bucket_floor(idx);
            if seen < r50 && seen + n >= r50 {
                snap.p50 = floor;
            }
            if seen < r95 && seen + n >= r95 {
                snap.p95 = floor;
            }
            if seen < r99 && seen + n >= r99 {
                snap.p99 = floor;
            }
            seen += n;
        }
        snap
    }
}

/// A point-in-time summary of a [`Histogram`], in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (exact, not bucketed).
    pub max: u64,
    /// Median (bucket floor, ≤ 6% relative error).
    pub p50: u64,
    /// 95th percentile (bucket floor).
    pub p95: u64,
    /// 99th percentile (bucket floor).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_space() {
        // Every bucket's floor maps back into that bucket, and floors
        // are strictly increasing — the mapping is a partition.
        let mut prev = None;
        for idx in 0..BUCKETS {
            let floor = bucket_floor(idx);
            assert_eq!(bucket_index(floor), idx, "floor of bucket {idx}");
            if let Some(p) = prev {
                assert!(floor > p, "floors must increase at {idx}");
            }
            prev = Some(floor);
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB as u64 {
            assert_eq!(bucket_floor(bucket_index(v)), v);
        }
    }

    #[test]
    fn huge_values_clamp() {
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn known_quantiles_within_bucket_error() {
        // 1..=10_000 recorded once each: p50 = 5000, p95 = 9500,
        // p99 = 9900, within the 1/16 relative bucket error.
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 10_000);
        let close = |got: u64, want: f64| {
            let rel = (got as f64 - want).abs() / want;
            assert!(rel < 1.0 / 16.0, "got {got}, want ~{want}");
        };
        close(s.p50, 5_000.0);
        close(s.p95, 9_500.0);
        close(s.p99, 9_900.0);
        assert!((s.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        assert_eq!(Histogram::new().snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        // Four threads land on distinct stripes (or share benignly); the
        // merged snapshot must see every sample and the global max.
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 997));
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 40_000);
        assert_eq!(snap.max, 3_996);
        assert_eq!(h.count(), 40_000);
    }
}
