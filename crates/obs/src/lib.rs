//! Unified observability for the single-page-failure engine.
//!
//! One [`Obs`] handle per database instance bundles:
//!
//! - a [`FlightRecorder`] — lock-free per-thread rings of typed events,
//!   drainable into a causal [`Trace`] at any time;
//! - hot-path span timing ([`Obs::span`]) feeding log-linear
//!   [`Histogram`]s (p50/p95/p99/max);
//! - a [`RepairLedger`] — per-detector-class MTTD, per-failure-class
//!   MTTR, and every Figure-1 escalation with its event window;
//! - the [`MetricsSnapshot`]/[`Observable`] registry that flattens every
//!   subsystem's stats into one hierarchy with JSON and Prometheus
//!   exposition.
//!
//! Subsystems hold `OnceLock<Arc<Obs>>` attach points so constructor
//! signatures never change; an unattached or disabled handle costs one
//! relaxed atomic load on the hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blackbox;
mod hist;
mod ledger;
mod recorder;
mod registry;

pub use blackbox::{BlackBox, BLACKBOX_FILE, BLACKBOX_PREV_FILE, BLACKBOX_TMP};
pub use hist::{Histogram, HistogramSnapshot};
pub use ledger::{EscalationRecord, RepairLedger};
pub use recorder::{Event, EventKind, FlightRecorder, Trace, RING_SLOTS};
pub use registry::{
    validate_prometheus, GroupBuilder, Metric, MetricGroup, MetricValue, MetricsSnapshot,
    Observable,
};
// The causal-tracing plane (`spf-trace`) is re-exported wholesale so
// subsystems reach it through their existing `Arc<Obs>` attach points
// without growing a second dependency edge.
pub use spf_trace::{
    render_flame, stitch, to_chrome_json, ActiveSpan, SpanKind, SpanNode, SpanRecord, Stitched,
    TraceCtx, TraceTree, Tracer, TracerStats, WaitClass, WaitProfile, TRACE_RING_SLOTS,
};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use spf_util::SimClock;

/// Detector-class codes carried in [`EventKind::FaultDetected`]'s `b`
/// payload word, shared by the buffer pool's read-verify path and the
/// scrubber so traces decode uniformly.
pub mod detector {
    /// Page checksum mismatch.
    pub const CHECKSUM: u64 = 1;
    /// Self-identifying page id did not match.
    pub const WRONG_ID: u64 = 2;
    /// Header/slot plausibility check failed.
    pub const PLAUSIBILITY: u64 = 3;
    /// PageLSN cross-check against the recovery index (stale write).
    pub const STALE_LSN: u64 = 4;
    /// The device failed the read loudly.
    pub const HARD_ERROR: u64 = 5;
    /// Foster B-tree fence-key invariant violated.
    pub const FENCE_KEYS: u64 = 6;

    /// Stable name for a detector code (for trace rendering).
    #[must_use]
    pub fn name(code: u64) -> &'static str {
        match code {
            CHECKSUM => "checksum",
            WRONG_ID => "wrong_id",
            PLAUSIBILITY => "plausibility",
            STALE_LSN => "stale_lsn",
            HARD_ERROR => "hard_error",
            FENCE_KEYS => "fence_keys",
            _ => "unknown",
        }
    }
}

/// Failure-class codes carried in [`EventKind::Escalation`]'s `b`
/// payload word (the paper's Figure-1 taxonomy).
pub mod failure_class {
    /// Single-page failure (repairable in place).
    pub const SINGLE_PAGE: u64 = 1;
    /// Transaction failure (rollback).
    pub const TRANSACTION: u64 = 2;
    /// System failure (restart recovery).
    pub const SYSTEM: u64 = 3;
    /// Media failure (restore + log replay).
    pub const MEDIA: u64 = 4;

    /// Stable name for a failure-class code.
    #[must_use]
    pub fn name(code: u64) -> &'static str {
        match code {
            SINGLE_PAGE => "single_page",
            TRANSACTION => "transaction",
            SYSTEM => "system",
            MEDIA => "media",
            _ => "unknown",
        }
    }
}

/// Hot paths that carry span timing, each feeding its own histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// `Database::put_auto` end to end.
    PutAuto,
    /// Transaction commit including the log force wait.
    Commit,
    /// WAL group-leader force (write + sync).
    LogForce,
    /// Buffer-pool miss path (read + verify + install).
    PageMiss,
    /// Single-page repair (backup fetch + log replay).
    PageRepair,
    /// One full scrubber sweep.
    ScrubSweep,
    /// Background prefetch fetch path (read + verify + install).
    Prefetch,
}

/// The per-path span histograms.
#[derive(Debug)]
pub struct Spans {
    /// `put_auto` latency.
    pub put_auto: Arc<Histogram>,
    /// Commit latency.
    pub commit: Arc<Histogram>,
    /// Log-force latency.
    pub log_force: Arc<Histogram>,
    /// Miss-path latency.
    pub page_miss: Arc<Histogram>,
    /// Single-page repair latency.
    pub page_repair: Arc<Histogram>,
    /// Scrub sweep latency.
    pub scrub_sweep: Arc<Histogram>,
    /// Background prefetch fetch latency.
    pub prefetch: Arc<Histogram>,
}

impl Default for Spans {
    fn default() -> Self {
        Self {
            put_auto: Arc::new(Histogram::new()),
            commit: Arc::new(Histogram::new()),
            log_force: Arc::new(Histogram::new()),
            page_miss: Arc::new(Histogram::new()),
            page_repair: Arc::new(Histogram::new()),
            scrub_sweep: Arc::new(Histogram::new()),
            prefetch: Arc::new(Histogram::new()),
        }
    }
}

impl Spans {
    fn hist(&self, span: Span) -> &Arc<Histogram> {
        match span {
            Span::PutAuto => &self.put_auto,
            Span::Commit => &self.commit,
            Span::LogForce => &self.log_force,
            Span::PageMiss => &self.page_miss,
            Span::PageRepair => &self.page_repair,
            Span::ScrubSweep => &self.scrub_sweep,
            Span::Prefetch => &self.prefetch,
        }
    }
}

impl Observable for TracerStats {
    fn observe(&self, g: &mut GroupBuilder) {
        g.counter("sampled_traces", self.sampled_traces)
            .counter("spans_recorded", self.spans_recorded)
            .gauge("rings", self.rings);
    }
}

impl Observable for Spans {
    fn observe(&self, g: &mut GroupBuilder) {
        g.histogram("put_auto_ns", self.put_auto.snapshot())
            .histogram("commit_ns", self.commit.snapshot())
            .histogram("log_force_ns", self.log_force.snapshot())
            .histogram("page_miss_ns", self.page_miss.snapshot())
            .histogram("page_repair_ns", self.page_repair.snapshot())
            .histogram("scrub_sweep_ns", self.scrub_sweep.snapshot())
            .histogram("prefetch_ns", self.prefetch.snapshot());
    }
}

/// Times a region of code into a span histogram on drop. Obtained from
/// [`Obs::span`]; inert (no clock read at all) when tracing is disabled.
/// Borrows its histogram (no refcount traffic on the hot path).
#[must_use = "a span guard measures until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    armed: Option<(Instant, &'a Histogram)>,
}

impl SpanGuard<'_> {
    /// A guard that records nothing.
    pub fn inert() -> Self {
        Self { armed: None }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.armed.take() {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// A black-box destination plus the closure that produces the metrics
/// snapshot at capture time (built by the database from its subsystem
/// handles, so `Obs` never depends on them).
struct BlackBoxArm {
    dir: PathBuf,
    metrics: Box<dyn Fn() -> String + Send + Sync>,
}

impl std::fmt::Debug for BlackBoxArm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlackBoxArm")
            .field("dir", &self.dir)
            .finish()
    }
}

/// Per-database observability handle.
#[derive(Debug)]
pub struct Obs {
    enabled: AtomicBool,
    recorder: FlightRecorder,
    ledger: RepairLedger,
    spans: Spans,
    tracer: Tracer,
    blackbox: Mutex<Option<BlackBoxArm>>,
}

impl Obs {
    /// Creates a handle stamping events with `clock`; `enabled` gates
    /// every hot-path emission and span.
    #[must_use]
    pub fn new(clock: Arc<SimClock>, enabled: bool) -> Self {
        Self {
            enabled: AtomicBool::new(enabled),
            recorder: FlightRecorder::new(clock),
            ledger: RepairLedger::new(),
            spans: Spans::default(),
            tracer: Tracer::new(),
            blackbox: Mutex::new(None),
        }
    }

    /// Whether tracing is currently on (one relaxed load).
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns tracing on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Emits a flight-recorder event (no-op when disabled).
    #[inline]
    pub fn emit(&self, kind: EventKind, a: u64, b: u64) {
        if self.enabled() {
            self.recorder.emit(kind, a, b);
        }
    }

    /// Starts timing `span`; the returned guard records on drop. When
    /// disabled the guard is inert and no clock is read.
    #[inline]
    pub fn span(&self, span: Span) -> SpanGuard<'_> {
        if self.enabled() {
            SpanGuard {
                armed: Some((Instant::now(), &**self.spans.hist(span))),
            }
        } else {
            SpanGuard::inert()
        }
    }

    /// Drains the flight recorder into a time-ordered trace.
    #[must_use]
    pub fn drain_trace(&self) -> Trace {
        self.recorder.drain()
    }

    /// The repair audit ledger.
    #[must_use]
    pub fn ledger(&self) -> &RepairLedger {
        &self.ledger
    }

    /// The span histograms (for snapshot registration).
    #[must_use]
    pub fn spans(&self) -> &Spans {
        &self.spans
    }

    /// The causal tracer (trace ids, span rings, sampling gate).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Sets the trace sampling rate: one operation in `every` gets a
    /// [`TraceCtx`] (0 turns causal tracing off).
    pub fn set_trace_sampling(&self, every: u64) {
        self.tracer.set_sample_every(every);
    }

    /// The sampling gate for a traced entry point: returns a fresh root
    /// context for one in `trace_sample_every` operations (and notes it
    /// in the flight recorder), [`TraceCtx::NONE`] otherwise. Unsampled
    /// operations pay one branch past the enabled check.
    #[inline]
    pub fn sample_trace(&self) -> TraceCtx {
        if !self.enabled() {
            return TraceCtx::NONE;
        }
        let ctx = self.tracer.sample();
        if ctx.sampled() {
            self.recorder.emit(EventKind::TraceSampled, ctx.trace_id, 0);
        }
        ctx
    }

    /// Starts a trace span under `ctx` (inert when unsampled).
    #[inline]
    pub fn trace_span(
        &self,
        ctx: TraceCtx,
        kind: SpanKind,
        class: WaitClass,
        a: u64,
    ) -> ActiveSpan<'_> {
        self.tracer.begin(ctx, kind, class, a)
    }

    /// Arms black-box capture: on panic (see [`install_panic_hook`])
    /// and on clean shutdown, a [`BlackBox`] is persisted into `dir`
    /// with `metrics` supplying the snapshot JSON.
    pub fn arm_blackbox(&self, dir: PathBuf, metrics: Box<dyn Fn() -> String + Send + Sync>) {
        *self.blackbox.lock() = Some(BlackBoxArm { dir, metrics });
    }

    /// Whether black-box capture is armed.
    #[must_use]
    pub fn blackbox_armed(&self) -> bool {
        self.blackbox.lock().is_some()
    }

    /// Captures and durably writes a black box (flight recorder, open
    /// trace rings, metrics snapshot) if armed. Returns the written
    /// path; `None` when unarmed or on I/O failure — a black box is
    /// best-effort forensics and must never turn a shutdown or panic
    /// into a second failure.
    pub fn write_blackbox(&self, reason: &str) -> Option<PathBuf> {
        let guard = self.blackbox.lock();
        let arm = guard.as_ref()?;
        let bb = BlackBox {
            reason: reason.to_string(),
            events: self.recorder.drain().events,
            spans: self.tracer.drain(),
            metrics_json: (arm.metrics)(),
        };
        bb.save(&arm.dir).ok()
    }

    /// Rotates a pre-existing black box in `dir` to
    /// [`BLACKBOX_PREV_FILE`] so a new run never clobbers the previous
    /// run's forensics. No-op when none exists.
    pub fn rotate_blackbox(dir: &Path) -> std::io::Result<()> {
        let cur = dir.join(BLACKBOX_FILE);
        if cur.exists() {
            std::fs::rename(&cur, dir.join(BLACKBOX_PREV_FILE))?;
        }
        Ok(())
    }
}

/// Installs a panic hook that dumps `obs`'s flight recorder to stderr
/// and, when black-box capture is armed, persists a [`BlackBox`] into
/// the database directory before the default hook runs. Meant for
/// experiment binaries, where a panic should leave a forensic trace;
/// libraries should not call this.
pub fn install_panic_hook(obs: Arc<Obs>) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let trace = obs.drain_trace();
        eprintln!(
            "=== flight recorder dump on panic ({} events) ===\n{}",
            trace.len(),
            trace.render()
        );
        if let Some(path) = obs.write_blackbox(&format!("panic: {info}")) {
            eprintln!("=== black box written to {} ===", path.display());
        }
        prev(info);
    }));
}

/// Extracts the depth-1 field names from a struct's `{:#?}` debug
/// output (lines of the form `    name: value,`). Used by the drift
/// test to prove every public stats field surfaces as a metric without
/// needing proc macros.
#[must_use]
pub fn debug_field_names(debug_pretty: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut depth = 0usize;
    for line in debug_pretty.lines() {
        let trimmed = line.trim();
        if depth == 1 {
            if let Some((name, _)) = trimmed.split_once(':') {
                let name = name.trim();
                if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    names.push(name.to_string());
                }
            }
        }
        depth += trimmed.matches(['{', '[', '(']).count();
        depth = depth.saturating_sub(trimmed.matches(['}', ']', ')']).count());
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_emits_nothing() {
        let obs = Obs::new(Arc::new(SimClock::new()), false);
        obs.emit(EventKind::TxCommit, 1, 2);
        {
            let _g = obs.span(Span::PutAuto);
        }
        assert!(obs.drain_trace().is_empty());
        assert_eq!(obs.spans().put_auto.count(), 0);
    }

    #[test]
    fn enabled_obs_records_spans_and_events() {
        let obs = Obs::new(Arc::new(SimClock::new()), true);
        obs.emit(EventKind::FaultDetected, 5, 1);
        {
            let _g = obs.span(Span::Commit);
        }
        assert_eq!(obs.drain_trace().len(), 1);
        assert_eq!(obs.spans().commit.count(), 1);
    }

    #[test]
    fn toggling_at_runtime_takes_effect() {
        let obs = Obs::new(Arc::new(SimClock::new()), false);
        obs.emit(EventKind::TxCommit, 0, 0);
        obs.set_enabled(true);
        obs.emit(EventKind::TxCommit, 1, 0);
        assert_eq!(obs.drain_trace().len(), 1);
    }

    #[test]
    fn spans_observe_as_histograms() {
        let obs = Obs::new(Arc::new(SimClock::new()), true);
        {
            let _g = obs.span(Span::LogForce);
        }
        let mut snap = MetricsSnapshot::new();
        snap.add("latency", obs.spans());
        assert_eq!(snap.get("latency", "log_force_ns"), Some(1));
        assert!(snap.to_json().contains("\"log_force_ns\""));
    }

    #[test]
    fn sample_trace_gates_and_notes_in_recorder() {
        let obs = Obs::new(Arc::new(SimClock::new()), true);
        assert_eq!(
            obs.sample_trace(),
            TraceCtx::NONE,
            "sampling off by default"
        );
        obs.set_trace_sampling(2);
        let sampled = (0..10).filter(|_| obs.sample_trace().sampled()).count();
        assert_eq!(sampled, 5);
        let trace = obs.drain_trace();
        assert_eq!(trace.of_kind(EventKind::TraceSampled).count(), 5);
        // Disabled obs never samples even with the knob armed.
        obs.set_enabled(false);
        assert_eq!(obs.sample_trace(), TraceCtx::NONE);
    }

    #[test]
    fn trace_spans_flow_through_obs() {
        let obs = Obs::new(Arc::new(SimClock::new()), true);
        obs.set_trace_sampling(1);
        let ctx = obs.sample_trace();
        {
            let root = obs.trace_span(ctx, SpanKind::PutAuto, WaitClass::Run, 0);
            let _child = obs.trace_span(root.ctx(), SpanKind::Commit, WaitClass::Run, 0);
        }
        let stitched = obs.tracer().drain_trees();
        assert_eq!(stitched.trees.len(), 1);
        assert_eq!(stitched.trees[0].span_count(), 2);
    }

    #[test]
    fn blackbox_write_requires_arming_and_round_trips() {
        let obs = Obs::new(Arc::new(SimClock::new()), true);
        assert!(obs.write_blackbox("too early").is_none());
        let dir = tempdir::TempDir::new("obs_bb").unwrap();
        obs.arm_blackbox(dir.path().to_path_buf(), Box::new(|| "{\"x\":1}".into()));
        assert!(obs.blackbox_armed());
        obs.emit(EventKind::FaultDetected, 7, detector::CHECKSUM);
        obs.set_trace_sampling(1);
        let ctx = obs.sample_trace();
        {
            let _s = obs.trace_span(ctx, SpanKind::Get, WaitClass::Run, 0);
        }
        let path = obs.write_blackbox("unit test").expect("armed write");
        let bb = BlackBox::load(&path).unwrap();
        assert_eq!(bb.reason, "unit test");
        assert!(bb.events.iter().any(|e| e.kind == EventKind::FaultDetected));
        assert!(bb.spans.iter().any(|s| s.kind == SpanKind::Get));
        assert_eq!(bb.metrics_json, "{\"x\":1}");
    }

    #[test]
    fn blackbox_rotation_moves_old_box_aside() {
        let dir = tempdir::TempDir::new("obs_rot").unwrap();
        Obs::rotate_blackbox(dir.path()).unwrap(); // no-op when absent
        let obs = Obs::new(Arc::new(SimClock::new()), true);
        obs.arm_blackbox(dir.path().to_path_buf(), Box::new(String::new));
        obs.write_blackbox("first run").unwrap();
        Obs::rotate_blackbox(dir.path()).unwrap();
        assert!(!dir.path().join(BLACKBOX_FILE).exists());
        let prev = BlackBox::load(&dir.path().join(BLACKBOX_PREV_FILE)).unwrap();
        assert_eq!(prev.reason, "first run");
    }

    #[test]
    fn debug_field_names_parses_depth_one() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct Inner {
            deep: u64,
        }
        #[derive(Debug)]
        #[allow(dead_code)]
        struct Outer {
            hits: u64,
            misses: u64,
            inner: Inner,
        }
        let names = debug_field_names(&format!(
            "{:#?}",
            Outer {
                hits: 1,
                misses: 2,
                inner: Inner { deep: 3 }
            }
        ));
        assert_eq!(names, vec!["hits", "misses", "inner"]);
    }
}
