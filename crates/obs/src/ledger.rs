//! Repair audit ledger: the paper's economics, measured.
//!
//! Single-page repair pays off only when detection latency (MTTD),
//! repair latency (MTTR), and escalation frequency are known. The
//! ledger keeps a per-detector-class MTTD histogram, a per-failure-class
//! MTTR histogram, and a bounded list of Figure-1 escalations, each
//! captured with the flight-recorder window that led up to it.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use spf_util::SimDuration;

use crate::hist::{Histogram, HistogramSnapshot};
use crate::recorder::Trace;

/// Escalation records retained (newest win; older ones age out).
const MAX_ESCALATIONS: usize = 64;

/// One Figure-1 escalation: a single-page repair gave up and handed the
/// failure to a heavier recovery class.
#[derive(Debug, Clone)]
pub struct EscalationRecord {
    /// Damaged page.
    pub page_id: u64,
    /// Detector class that found the damage (e.g. `checksum`).
    pub detector: &'static str,
    /// Failure class escalated to (e.g. `media`, `system`).
    pub escalated_to: &'static str,
    /// Simulated time of the escalation.
    pub at: SimDuration,
    /// Flight-recorder window drained at escalation time.
    pub trace: Trace,
}

#[derive(Default)]
struct Classed {
    by_class: BTreeMap<&'static str, Arc<Histogram>>,
}

impl Classed {
    fn hist(&mut self, class: &'static str) -> Arc<Histogram> {
        Arc::clone(self.by_class.entry(class).or_default())
    }
    fn snapshot(&self) -> BTreeMap<&'static str, HistogramSnapshot> {
        self.by_class
            .iter()
            .map(|(k, h)| (*k, h.snapshot()))
            .collect()
    }
}

/// Concurrent audit ledger. Recording takes a short mutex on the class
/// map lookup only; the histogram update itself is lock-free.
#[derive(Default)]
pub struct RepairLedger {
    mttd: Mutex<Classed>,
    mttr: Mutex<Classed>,
    escalations: Mutex<Vec<EscalationRecord>>,
}

impl std::fmt::Debug for RepairLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepairLedger")
            .field("escalations", &self.escalations.lock().len())
            .finish()
    }
}

impl RepairLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a detection: `latency` is damage-age at detection time
    /// (MTTD sample) under detector class `detector`.
    pub fn record_detection(&self, detector: &'static str, latency: SimDuration) {
        let h = self.mttd.lock().hist(detector);
        h.record(latency.as_nanos());
    }

    /// Records a completed repair: `latency` is detect→repaired time
    /// (MTTR sample) under failure class `failure`.
    pub fn record_repair(&self, failure: &'static str, latency: SimDuration) {
        let h = self.mttr.lock().hist(failure);
        h.record(latency.as_nanos());
    }

    /// Records a Figure-1 escalation with its triggering event window.
    pub fn record_escalation(&self, rec: EscalationRecord) {
        let mut e = self.escalations.lock();
        if e.len() == MAX_ESCALATIONS {
            e.remove(0);
        }
        e.push(rec);
    }

    /// Per-detector-class MTTD summaries.
    #[must_use]
    pub fn mttd_snapshot(&self) -> BTreeMap<&'static str, HistogramSnapshot> {
        self.mttd.lock().snapshot()
    }

    /// Per-failure-class MTTR summaries.
    #[must_use]
    pub fn mttr_snapshot(&self) -> BTreeMap<&'static str, HistogramSnapshot> {
        self.mttr.lock().snapshot()
    }

    /// Clones the retained escalation records (newest last).
    #[must_use]
    pub fn escalations(&self) -> Vec<EscalationRecord> {
        self.escalations.lock().clone()
    }

    /// Total escalations currently retained.
    #[must_use]
    pub fn escalation_count(&self) -> usize {
        self.escalations.lock().len()
    }

    /// Renders a human-readable audit report (MTTD/MTTR tables plus the
    /// most recent escalations with their event windows).
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "repair audit ledger");
        let _ = writeln!(s, "  MTTD by detector class (sim ns):");
        for (class, h) in self.mttd_snapshot() {
            let _ = writeln!(
                s,
                "    {class:<12} n={:<6} p50={} p95={} p99={} max={}",
                h.count, h.p50, h.p95, h.p99, h.max
            );
        }
        let _ = writeln!(s, "  MTTR by failure class (sim ns):");
        for (class, h) in self.mttr_snapshot() {
            let _ = writeln!(
                s,
                "    {class:<12} n={:<6} p50={} p95={} p99={} max={}",
                h.count, h.p50, h.p95, h.p99, h.max
            );
        }
        let escs = self.escalations();
        let _ = writeln!(s, "  escalations: {}", escs.len());
        for e in escs.iter().rev().take(4) {
            let _ = writeln!(
                s,
                "    page {} via {} -> {} at {:?} ({} events in window)",
                e.page_id,
                e.detector,
                e.escalated_to,
                e.at,
                e.trace.len()
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mttd_and_mttr_accumulate_by_class() {
        let l = RepairLedger::new();
        l.record_detection("checksum", SimDuration::from_nanos(100));
        l.record_detection("checksum", SimDuration::from_nanos(300));
        l.record_detection("fence_keys", SimDuration::from_nanos(50));
        l.record_repair("single_page", SimDuration::from_nanos(10));
        let mttd = l.mttd_snapshot();
        assert_eq!(mttd["checksum"].count, 2);
        assert_eq!(mttd["fence_keys"].count, 1);
        assert_eq!(l.mttr_snapshot()["single_page"].count, 1);
    }

    #[test]
    fn escalations_are_bounded() {
        let l = RepairLedger::new();
        for i in 0..(MAX_ESCALATIONS as u64 + 10) {
            l.record_escalation(EscalationRecord {
                page_id: i,
                detector: "checksum",
                escalated_to: "media",
                at: SimDuration::from_nanos(i),
                trace: Trace::default(),
            });
        }
        let escs = l.escalations();
        assert_eq!(escs.len(), MAX_ESCALATIONS);
        assert_eq!(escs[0].page_id, 10, "oldest aged out");
        assert!(l.render().contains("escalations: 64"));
    }
}
