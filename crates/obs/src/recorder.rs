//! Lock-free per-thread flight recorder.
//!
//! Each thread that emits events owns a bounded [`ThreadRing`]: a
//! seqlock-versioned ring of fixed-width slots written only by that
//! thread, so `emit` is wait-free (no CAS loops, no locks). A drainer
//! walks every registered ring and keeps only slots whose version word
//! is stable across the read — torn writes are detected and skipped,
//! never returned. The newest `RING_SLOTS` events per thread survive;
//! older ones are overwritten, which bounds memory no matter how long
//! the engine runs.

use std::fmt;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use spf_util::SimDuration;

/// Events retained per emitting thread (power of two).
pub const RING_SLOTS: usize = 256;

/// Typed flight-recorder events. The discriminant is packed into the
/// event word, so variants must stay `u8`-sized and stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// A user transaction committed (`a` = commit LSN).
    TxCommit = 1,
    /// The WAL group leader forced the log (`a` = durable LSN, `b` = bytes).
    LogForce = 2,
    /// Buffer pool miss — page read from the database device (`a` = page id).
    PageMiss = 3,
    /// Buffer pool evicted a frame (`a` = page id, `b` = 1 if dirty write-back).
    PageEvict = 4,
    /// B-tree descent restarted after losing a latch race (`a` = page id).
    DescentRetry = 5,
    /// Structural modification hit a conflict and will retry (`a` = page id).
    Restructure = 6,
    /// A detector flagged a damaged page (`a` = page id, `b` = detector class).
    FaultDetected = 7,
    /// Single-page repair started (`a` = page id).
    RepairAttempt = 8,
    /// Single-page repair succeeded (`a` = page id, `b` = nanos to repair).
    RepairOk = 9,
    /// Single-page repair failed; escalation will follow (`a` = page id).
    RepairFailed = 10,
    /// Figure-1 escalation to a heavier recovery class (`a` = page id,
    /// `b` = failure class escalated to).
    Escalation = 11,
    /// Scrub sweep finished (`a` = pages scanned, `b` = findings).
    ScrubSweep = 12,
    /// Predictive prefetch issued a background read (`a` = page id,
    /// `b` = access-context code).
    PrefetchIssued = 13,
    /// A foreground fetch hit (or coalesced behind) a prefetched page
    /// before it was referenced (`a` = page id).
    PrefetchHit = 14,
    /// An operation passed the trace sampling gate (`a` = trace id).
    TraceSampled = 15,
    /// The background-I/O governor withheld tokens before an I/O
    /// (`a` = pages requested, `b` = wait nanos).
    GovernorThrottle = 16,
}

impl EventKind {
    /// All variants, for exposition and tests.
    pub const ALL: [EventKind; 16] = [
        EventKind::TxCommit,
        EventKind::LogForce,
        EventKind::PageMiss,
        EventKind::PageEvict,
        EventKind::DescentRetry,
        EventKind::Restructure,
        EventKind::FaultDetected,
        EventKind::RepairAttempt,
        EventKind::RepairOk,
        EventKind::RepairFailed,
        EventKind::Escalation,
        EventKind::ScrubSweep,
        EventKind::PrefetchIssued,
        EventKind::PrefetchHit,
        EventKind::TraceSampled,
        EventKind::GovernorThrottle,
    ];

    /// Short stable name used in trace dumps and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TxCommit => "tx_commit",
            EventKind::LogForce => "log_force",
            EventKind::PageMiss => "page_miss",
            EventKind::PageEvict => "page_evict",
            EventKind::DescentRetry => "descent_retry",
            EventKind::Restructure => "restructure",
            EventKind::FaultDetected => "fault_detected",
            EventKind::RepairAttempt => "repair_attempt",
            EventKind::RepairOk => "repair_ok",
            EventKind::RepairFailed => "repair_failed",
            EventKind::Escalation => "escalation",
            EventKind::ScrubSweep => "scrub_sweep",
            EventKind::PrefetchIssued => "prefetch_issued",
            EventKind::PrefetchHit => "prefetch_hit",
            EventKind::TraceSampled => "trace_sampled",
            EventKind::GovernorThrottle => "governor_throttle",
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<Self> {
        EventKind::ALL.get(code.wrapping_sub(1) as usize).copied()
    }
}

/// A decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Emitting thread's ring id (stable for the thread's lifetime).
    pub thread: u64,
    /// Per-thread sequence number (strictly increasing within a thread).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Simulated clock at emission.
    pub sim: SimDuration,
    /// Wall-clock nanoseconds since the recorder was created.
    pub wall_nanos: u64,
    /// First payload word (usually a page id or LSN).
    pub a: u64,
    /// Second payload word (kind-specific).
    pub b: u64,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t{} #{:<5} sim={:>12?} wall={:>9}ns] {:<14} a={} b={}",
            self.thread,
            self.seq,
            self.sim,
            self.wall_nanos,
            self.kind.name(),
            self.a,
            self.b
        )
    }
}

/// Event word layout: kind in the top byte, 56-bit sequence below it.
const SEQ_MASK: u64 = (1 << 56) - 1;

/// One seqlock-protected slot: `ver` is odd while a write is in flight.
#[derive(Debug)]
struct Slot {
    ver: AtomicU64,
    words: [AtomicU64; 4],
}

impl Slot {
    fn new() -> Self {
        Self {
            ver: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A single-writer event ring. Only the owning thread calls `push`;
/// any thread may `collect`.
#[derive(Debug)]
pub(crate) struct ThreadRing {
    id: u64,
    /// Next sequence number; doubles as the ring head.
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl ThreadRing {
    fn new(id: u64) -> Self {
        Self {
            id,
            head: AtomicU64::new(0),
            slots: (0..RING_SLOTS).map(|_| Slot::new()).collect(),
        }
    }

    /// Reads every stable slot into `out` as decoded events. Seqlock
    /// read side: a slot whose version word is even and unchanged across
    /// the payload reads is consistent; anything else is skipped.
    fn collect(&self, out: &mut Vec<Event>, b_side: &BSide) {
        for (idx, slot) in self.slots.iter().enumerate() {
            let v1 = slot.ver.load(Ordering::Acquire);
            if v1 == 0 || v1 & 1 == 1 {
                continue;
            }
            let w0 = slot.words[0].load(Ordering::Relaxed);
            let w1 = slot.words[1].load(Ordering::Relaxed);
            let w2 = slot.words[2].load(Ordering::Relaxed);
            let w3 = slot.words[3].load(Ordering::Relaxed);
            let b = b_side.load(idx);
            fence(Ordering::Acquire);
            if slot.ver.load(Ordering::Relaxed) != v1 {
                continue; // torn: writer landed mid-read
            }
            let seq = w0 & SEQ_MASK;
            if (seq as usize) & (RING_SLOTS - 1) != idx {
                continue; // stale slot from before a wrap reset
            }
            let Some(kind) = EventKind::from_code((w0 >> 56) as u8) else {
                continue;
            };
            out.push(Event {
                thread: self.id,
                seq,
                kind,
                sim: SimDuration::from_nanos(w1),
                wall_nanos: w2,
                a: w3,
                b,
            });
        }
    }
}

/// Side array for the second payload word, versioned with the same
/// seqlock discipline via re-check in `collect`.
#[derive(Debug)]
struct BSide {
    words: Vec<AtomicU64>,
}

impl BSide {
    fn new() -> Self {
        Self {
            words: (0..RING_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
    fn store(&self, idx: usize, b: u64) {
        self.words[idx].store(b, Ordering::Relaxed);
    }
    fn load(&self, idx: usize) -> u64 {
        self.words[idx].load(Ordering::Relaxed)
    }
}

/// Handle a thread uses to emit into its own ring.
#[derive(Clone)]
pub(crate) struct RingHandle {
    ring: Arc<ThreadRing>,
    b_side: Arc<BSide>,
}

/// A drained, time-ordered set of events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events sorted by (sim time, thread, seq).
    pub events: Vec<Event>,
}

impl Trace {
    /// True when no events were captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of captured events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Events of one kind, in order.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Renders the trace as one line per event.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(self.events.len() * 64);
        for e in &self.events {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

struct Registered {
    ring: Arc<ThreadRing>,
    b_side: Arc<BSide>,
}

/// The recorder: registry of per-thread rings plus the clocks used to
/// stamp events.
pub struct FlightRecorder {
    /// Globally unique id; TLS caches are keyed by it so two recorders
    /// (e.g. twin oracle engines) never share a ring.
    uid: u64,
    rings: Mutex<Vec<Registered>>,
    next_ring: AtomicU64,
    clock: Arc<spf_util::SimClock>,
    origin: std::time::Instant,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("uid", &self.uid)
            .field("rings", &self.rings.lock().len())
            .finish()
    }
}

static RECORDER_UID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (recorder uid → this thread's ring) cache. A Vec beats a map at
    /// the expected size of one or two engines per process.
    static TLS_RINGS: std::cell::RefCell<Vec<(u64, RingHandle)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl FlightRecorder {
    /// Creates a recorder stamping events with `clock`.
    #[must_use]
    pub fn new(clock: Arc<spf_util::SimClock>) -> Self {
        Self {
            uid: RECORDER_UID.fetch_add(1, Ordering::Relaxed),
            rings: Mutex::new(Vec::new()),
            next_ring: AtomicU64::new(0),
            clock,
            origin: std::time::Instant::now(),
        }
    }

    /// Emits one event into the calling thread's ring. The ring handle
    /// is borrowed straight out of the TLS cache — no `Arc` refcount
    /// traffic on the hot path.
    pub fn emit(&self, kind: EventKind, a: u64, b: u64) {
        let sim = self.clock.now().as_nanos();
        let wall = self.origin.elapsed().as_nanos() as u64;
        TLS_RINGS.with(|cell| {
            let mut cache = cell.borrow_mut();
            let pos = match cache.iter().position(|(uid, _)| *uid == self.uid) {
                Some(pos) => pos,
                None => {
                    let ring = Arc::new(ThreadRing::new(
                        self.next_ring.fetch_add(1, Ordering::Relaxed),
                    ));
                    let b_side = Arc::new(BSide::new());
                    self.rings.lock().push(Registered {
                        ring: Arc::clone(&ring),
                        b_side: Arc::clone(&b_side),
                    });
                    cache.push((self.uid, RingHandle { ring, b_side }));
                    cache.len() - 1
                }
            };
            let h = &cache[pos].1;
            let seq = h.ring.head.load(Ordering::Relaxed) & SEQ_MASK;
            let kind_seq = ((kind as u64) << 56) | seq;
            // The b word lives in a side array indexed like the ring;
            // store it inside the slot's odd-version window so
            // collect()'s version re-check also covers it.
            let idx = (seq as usize) & (RING_SLOTS - 1);
            let slot = &h.ring.slots[idx];
            let v = slot.ver.load(Ordering::Relaxed);
            slot.ver.store(v | 1, Ordering::Relaxed);
            fence(Ordering::Release);
            slot.words[0].store(kind_seq, Ordering::Relaxed);
            slot.words[1].store(sim, Ordering::Relaxed);
            slot.words[2].store(wall, Ordering::Relaxed);
            slot.words[3].store(a, Ordering::Relaxed);
            h.b_side.store(idx, b);
            slot.ver.store((v | 1).wrapping_add(1), Ordering::Release);
            h.ring.head.store(seq.wrapping_add(1), Ordering::Release);
        });
    }

    /// Snapshots every ring into a time-ordered [`Trace`]. Rings keep
    /// recording while the drain runs; torn slots are skipped.
    #[must_use]
    pub fn drain(&self) -> Trace {
        let rings = self.rings.lock();
        let mut events = Vec::new();
        for reg in rings.iter() {
            reg.ring.collect(&mut events, &reg.b_side);
        }
        drop(rings);
        events.sort_by_key(|e| (e.sim, e.thread, e.seq));
        Trace { events }
    }

    /// Number of registered per-thread rings (bounded-memory check).
    #[must_use]
    pub fn ring_count(&self) -> usize {
        self.rings.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_util::SimClock;

    fn recorder() -> FlightRecorder {
        FlightRecorder::new(Arc::new(SimClock::new()))
    }

    #[test]
    fn emit_and_drain_round_trips() {
        let r = recorder();
        r.emit(EventKind::TxCommit, 7, 9);
        r.emit(EventKind::PageMiss, 42, 0);
        let t = r.drain();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events[0].kind, EventKind::TxCommit);
        assert_eq!(t.events[0].a, 7);
        assert_eq!(t.events[0].b, 9);
        assert_eq!(t.of_kind(EventKind::PageMiss).count(), 1);
    }

    #[test]
    fn ring_keeps_newest_events() {
        let r = recorder();
        for i in 0..(RING_SLOTS as u64 * 3) {
            r.emit(EventKind::PageEvict, i, 0);
        }
        let t = r.drain();
        assert_eq!(t.len(), RING_SLOTS);
        let min_a = t.events.iter().map(|e| e.a).min().unwrap();
        assert_eq!(min_a, RING_SLOTS as u64 * 2, "only the newest survive");
    }

    #[test]
    fn per_thread_sequences_are_monotone() {
        let r = Arc::new(recorder());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..100 {
                        r.emit(EventKind::TxCommit, i, 0);
                    }
                });
            }
        });
        let t = r.drain();
        assert_eq!(r.ring_count(), 4);
        for tid in 0..4 {
            let seqs: Vec<u64> = t
                .events
                .iter()
                .filter(|e| e.thread == tid)
                .map(|e| e.seq)
                .collect();
            assert!(seqs.windows(2).all(|w| w[0] < w[1]), "thread {tid} order");
        }
    }

    #[test]
    fn concurrent_drain_sees_no_torn_events() {
        // Writers spin while drainers snapshot; every decoded event must
        // be internally consistent (payload equals its seq, as written).
        let r = Arc::new(recorder());
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let r = Arc::clone(&r);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut i = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        r.emit(EventKind::LogForce, i, i.wrapping_mul(3));
                        i += 1;
                    }
                });
            }
            for _ in 0..2 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for _ in 0..200 {
                        for e in &r.drain().events {
                            assert_eq!(e.b, e.a.wrapping_mul(3), "torn event: {e:?}");
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
            stop.store(1, Ordering::Relaxed);
        });
    }

    #[test]
    fn two_recorders_do_not_share_rings() {
        let r1 = recorder();
        let r2 = recorder();
        r1.emit(EventKind::TxCommit, 1, 0);
        r2.emit(EventKind::Escalation, 2, 0);
        assert_eq!(r1.drain().len(), 1);
        assert_eq!(r2.drain().len(), 1);
        assert_eq!(r2.drain().events[0].kind, EventKind::Escalation);
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_code(k as u8), Some(k));
        }
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(200), None);
    }
}
