//! The crash black box: a CRC-guarded forensic snapshot persisted in
//! the database directory.
//!
//! On panic (via the hook installed by [`crate::install_panic_hook`])
//! and on clean shutdown, the engine serializes its flight-recorder
//! events, the open trace rings, and a metrics snapshot into
//! `blackbox.spfb`, written with the same tmp-write → fsync → rename →
//! dir-fsync protocol as the manifest so a crash mid-write never
//! clobbers an older, complete box. `spf-dump` (in `crates/bench`)
//! pretty-prints the postmortem.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use spf_trace::{render_flame, stitch, SpanRecord};
use spf_util::{crc32c, Decoder, Encoder, SimDuration};

use crate::recorder::{Event, EventKind, Trace};

/// The black-box file name inside a database directory.
pub const BLACKBOX_FILE: &str = "blackbox.spfb";
/// Where `Database::open` rotates a pre-existing box from a prior run.
pub const BLACKBOX_PREV_FILE: &str = "blackbox.prev.spfb";
/// Temporary name used during the create–rename–fsync write.
pub const BLACKBOX_TMP: &str = "blackbox.spfb.tmp";

const MAGIC: &[u8; 8] = b"SPFBBOX1";
const VERSION: u32 = 1;
const MAX_REASON: usize = 64 * 1024;
const MAX_ENTRIES: usize = 1 << 20;
const MAX_METRICS: usize = 16 * 1024 * 1024;

/// A decoded (or about-to-be-written) black box.
#[derive(Debug, Clone, Default)]
pub struct BlackBox {
    /// Why the box was written (panic message or "clean shutdown").
    pub reason: String,
    /// Flight-recorder events at capture time, in drain order.
    pub events: Vec<Event>,
    /// Trace-ring spans at capture time (the in-flight traces).
    pub spans: Vec<SpanRecord>,
    /// Full metrics snapshot as JSON.
    pub metrics_json: String,
}

impl BlackBox {
    /// Serializes the box, CRC trailer included.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(4096 + self.events.len() * 48 + self.spans.len() * 82);
        e.put_bytes(MAGIC);
        e.put_u32(VERSION);
        e.put_len_bytes(self.reason.as_bytes());
        e.put_u32(self.events.len() as u32);
        for ev in &self.events {
            e.put_u64(ev.thread);
            e.put_u64(ev.seq);
            e.put_u8(ev.kind as u8);
            e.put_u64(ev.sim.as_nanos());
            e.put_u64(ev.wall_nanos);
            e.put_u64(ev.a);
            e.put_u64(ev.b);
        }
        e.put_u32(self.spans.len() as u32);
        for sp in &self.spans {
            sp.encode(&mut e);
        }
        e.put_len_bytes(self.metrics_json.as_bytes());
        let crc = crc32c(e.as_slice());
        e.put_u32(crc);
        e.finish()
    }

    /// Decodes and CRC-verifies a box written by [`BlackBox::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err("black box truncated".into());
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
        let actual = crc32c(body);
        if stored != actual {
            return Err(format!(
                "black box CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
            ));
        }
        let mut d = Decoder::new(body);
        let magic = d.get_bytes(MAGIC.len()).map_err(|e| e.to_string())?;
        if magic != MAGIC {
            return Err("not a black box (bad magic)".into());
        }
        let version = d.get_u32().map_err(|e| e.to_string())?;
        if version != VERSION {
            return Err(format!("unsupported black box version {version}"));
        }
        let reason =
            String::from_utf8_lossy(d.get_len_bytes(MAX_REASON).map_err(|e| e.to_string())?)
                .into_owned();
        let n_events = d.get_u32().map_err(|e| e.to_string())? as usize;
        if n_events > MAX_ENTRIES {
            return Err(format!("implausible event count {n_events}"));
        }
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let thread = d.get_u64().map_err(|e| e.to_string())?;
            let seq = d.get_u64().map_err(|e| e.to_string())?;
            let code = d.get_u8().map_err(|e| e.to_string())?;
            let kind = EventKind::from_code(code)
                .ok_or_else(|| format!("unknown event kind code {code}"))?;
            events.push(Event {
                thread,
                seq,
                kind,
                sim: SimDuration::from_nanos(d.get_u64().map_err(|e| e.to_string())?),
                wall_nanos: d.get_u64().map_err(|e| e.to_string())?,
                a: d.get_u64().map_err(|e| e.to_string())?,
                b: d.get_u64().map_err(|e| e.to_string())?,
            });
        }
        let n_spans = d.get_u32().map_err(|e| e.to_string())? as usize;
        if n_spans > MAX_ENTRIES {
            return Err(format!("implausible span count {n_spans}"));
        }
        let mut spans = Vec::with_capacity(n_spans);
        for _ in 0..n_spans {
            spans.push(SpanRecord::decode(&mut d).map_err(|e| e.to_string())?);
        }
        let metrics_json =
            String::from_utf8_lossy(d.get_len_bytes(MAX_METRICS).map_err(|e| e.to_string())?)
                .into_owned();
        Ok(Self {
            reason,
            events,
            spans,
            metrics_json,
        })
    }

    /// Durably writes the box into `dir` as [`BLACKBOX_FILE`] with the
    /// create–rename–fsync protocol. Returns the final path.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        let tmp = dir.join(BLACKBOX_TMP);
        let path = dir.join(BLACKBOX_FILE);
        let mut file = File::create(&tmp)?;
        file.write_all(&self.encode())?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &path)?;
        OpenOptions::new().read(true).open(dir)?.sync_all()?;
        Ok(path)
    }

    /// Loads and verifies a box from a file path.
    pub fn load(path: &Path) -> Result<Self, String> {
        let bytes = fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::decode(&bytes)
    }

    /// Renders the full postmortem: reason, event timeline, in-flight
    /// trace trees with wait profiles, a flame rollup, and the metrics
    /// snapshot. This is what `spf-dump` prints.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "=== black box: {} ===", self.reason);
        let _ = writeln!(
            out,
            "{} events, {} spans, {} metric bytes",
            self.events.len(),
            self.spans.len(),
            self.metrics_json.len()
        );
        let _ = writeln!(out, "\n--- event timeline ---");
        let trace = Trace {
            events: self.events.clone(),
        };
        out.push_str(&trace.render());
        let _ = writeln!(out, "\n--- repair forensics ---");
        out.push_str(&self.render_repair_chains());
        let stitched = stitch(self.spans.clone());
        let _ = writeln!(
            out,
            "\n--- in-flight traces ({} trees, {} orphan spans) ---",
            stitched.trees.len(),
            stitched.orphans.len()
        );
        for tree in &stitched.trees {
            let profile = tree.wait_profile();
            let _ = writeln!(
                out,
                "trace {}: {} spans, {}",
                tree.trace_id,
                tree.span_count(),
                profile.render()
            );
            tree.each_node(|n| {
                let _ = writeln!(out, "  {}", n.record);
            });
        }
        let flame = render_flame(&stitched);
        if !flame.is_empty() {
            let _ = writeln!(out, "\n--- flame rollup (exclusive ns) ---");
            out.push_str(&flame);
        }
        let _ = writeln!(out, "\n--- metrics snapshot ---");
        out.push_str(&self.metrics_json);
        out.push('\n');
        out
    }

    /// Extracts the per-page detect → repair chains from the event
    /// timeline: for every page with a `FaultDetected`, the ordered
    /// detect/attempt/ok/failed/escalation events that followed it.
    #[must_use]
    pub fn render_repair_chains(&self) -> String {
        use std::fmt::Write as _;
        let mut pages: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::FaultDetected)
            .map(|e| e.a)
            .collect();
        pages.sort_unstable();
        pages.dedup();
        if pages.is_empty() {
            return "no faults recorded\n".into();
        }
        let mut out = String::new();
        for page in pages {
            let chain: Vec<String> = self
                .events
                .iter()
                .filter(|e| {
                    e.a == page
                        && matches!(
                            e.kind,
                            EventKind::FaultDetected
                                | EventKind::RepairAttempt
                                | EventKind::RepairOk
                                | EventKind::RepairFailed
                                | EventKind::Escalation
                        )
                })
                .map(|e| match e.kind {
                    EventKind::FaultDetected => {
                        format!("detected({})", crate::detector::name(e.b))
                    }
                    EventKind::Escalation => {
                        format!("escalated({})", crate::failure_class::name(e.b))
                    }
                    k => k.name().to_string(),
                })
                .collect();
            let _ = writeln!(out, "page {page}: {}", chain.join(" -> "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_trace::{SpanKind, WaitClass};

    fn sample_box() -> BlackBox {
        BlackBox {
            reason: "panic: injected".into(),
            events: vec![
                Event {
                    thread: 0,
                    seq: 0,
                    kind: EventKind::FaultDetected,
                    sim: SimDuration::from_nanos(10),
                    wall_nanos: 11,
                    a: 42,
                    b: crate::detector::CHECKSUM,
                },
                Event {
                    thread: 0,
                    seq: 1,
                    kind: EventKind::RepairOk,
                    sim: SimDuration::from_nanos(20),
                    wall_nanos: 21,
                    a: 42,
                    b: 1000,
                },
            ],
            spans: vec![SpanRecord {
                thread: 0,
                seq: 0,
                trace_id: 1,
                span_id: 1,
                parent: 0,
                kind: SpanKind::PutAuto,
                class: WaitClass::Run,
                start_nanos: 5,
                dur_nanos: 100,
                a: 0,
                link: 0,
            }],
            metrics_json: "{\"pool\":{\"hits\":3}}".into(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let b = sample_box();
        let bytes = b.encode();
        let back = BlackBox::decode(&bytes).expect("round trip");
        assert_eq!(back.reason, b.reason);
        assert_eq!(back.events, b.events);
        assert_eq!(back.spans, b.spans);
        assert_eq!(back.metrics_json, b.metrics_json);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample_box().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let err = BlackBox::decode(&bytes).unwrap_err();
        assert!(err.contains("CRC"), "{err}");
        assert!(BlackBox::decode(&bytes[..10]).is_err());
    }

    #[test]
    fn save_load_round_trips() {
        let dir = tempdir::TempDir::new("blackbox").unwrap();
        let b = sample_box();
        let path = b.save(dir.path()).unwrap();
        assert_eq!(path, dir.path().join(BLACKBOX_FILE));
        assert!(!dir.path().join(BLACKBOX_TMP).exists());
        let back = BlackBox::load(&path).unwrap();
        assert_eq!(back.reason, b.reason);
        assert_eq!(back.events.len(), 2);
    }

    #[test]
    fn render_includes_detect_repair_chain() {
        let text = sample_box().render();
        assert!(text.contains("black box: panic: injected"));
        assert!(text.contains("page 42: detected(checksum) -> repair_ok"));
        assert!(text.contains("fault_detected"));
        assert!(text.contains("trace 1: 1 spans"));
        assert!(text.contains("put_auto"));
        assert!(text.contains("\"pool\""));
    }
}
