//! The transaction manager: begin/commit/abort, the per-transaction log
//! chain, and rollback with compensation log records.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use spf_obs::{EventKind, Obs, Span, SpanKind, TraceCtx, WaitClass};
use spf_storage::PageId;
use spf_wal::{LogManager, LogPayload, LogRecord, Lsn, PageOp, TxId};

/// Whether a transaction is a user or a system transaction (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxKind {
    /// Application-invoked; changes logical contents; commit forces the log.
    User,
    /// System-internal; contents-neutral structural change; commit does
    /// not force the log (Section 5.1.5).
    System,
}

impl TxKind {
    /// True for [`TxKind::System`].
    #[must_use]
    pub fn is_system(self) -> bool {
        matches!(self, TxKind::System)
    }
}

/// Where rollback compensations land: the caller's buffer pool.
///
/// Splitting `page_lsn` from `apply` lets the transaction manager write
/// the CLR (whose per-page chain pointer is the page's *current* LSN)
/// before the page is patched, and advance the PageLSN to the CLR's LSN
/// afterwards — keeping CLRs on the per-page chain that single-page
/// recovery replays.
pub trait UndoTarget {
    /// The current PageLSN of `page`.
    fn page_lsn(&self, page: PageId) -> Lsn;

    /// Applies `op` to `page` and marks it dirty with `clr_lsn` (which
    /// also becomes the page's PageLSN).
    fn apply(&self, page: PageId, op: &PageOp, clr_lsn: Lsn);
}

/// Transaction-manager errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// The transaction id is not active.
    NotActive(TxId),
    /// Rollback could not read a chained log record.
    LogBroken(String),
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::NotActive(tx) => write!(f, "{tx} is not active"),
            TxError::LogBroken(detail) => write!(f, "rollback failed: {detail}"),
        }
    }
}

impl std::error::Error for TxError {}

/// Counters for the experiment harness (E4: commit behaviour of user vs
/// system transactions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// User transactions committed.
    pub user_commits: u64,
    /// System transactions committed.
    pub system_commits: u64,
    /// Transactions rolled back.
    pub aborts: u64,
    /// Compensation log records written during rollbacks.
    pub clrs_written: u64,
    /// System transactions that rolled back after re-validation found a
    /// concurrent conflict and were retried (see
    /// [`TxnManager::run_system`]).
    pub system_conflicts: u64,
}

impl spf_obs::Observable for TxnStats {
    fn observe(&self, g: &mut spf_obs::GroupBuilder) {
        g.counter("user_commits", self.user_commits)
            .counter("system_commits", self.system_commits)
            .counter("aborts", self.aborts)
            .counter("clrs_written", self.clrs_written)
            .counter("system_conflicts", self.system_conflicts);
    }
}

/// The outcome of one attempt of a [`TxnManager::run_system`] body:
/// either the structural change re-validated and applied (`Done`), or
/// re-validation after re-latching found a concurrent conflict
/// (`Conflict`) and the attempt should be rolled back and retried after
/// a short back-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysAttempt<T> {
    /// The change applied; commit and return the payload.
    Done(T),
    /// A concurrent restructure invalidated the plan; roll back, back
    /// off, retry.
    Conflict,
}

#[derive(Debug, Clone, Copy)]
struct ActiveTx {
    kind: TxKind,
    /// The begin record's LSN — the floor of this transaction's undo
    /// chain, and therefore a bound on safe WAL truncation.
    first_lsn: Lsn,
    last_lsn: Lsn,
}

/// The transaction manager. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct TxnManager {
    inner: std::sync::Arc<Inner>,
}

struct Inner {
    log: LogManager,
    next_tx: AtomicU64,
    active: Mutex<HashMap<TxId, ActiveTx>>,
    stats: Mutex<TxnStats>,
    /// Observability attach point ([`TxnManager::attach_obs`]).
    obs: OnceLock<std::sync::Arc<Obs>>,
}

impl std::fmt::Debug for TxnManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnManager")
            .field("active", &self.inner.active.lock().len())
            .finish()
    }
}

impl TxnManager {
    /// Creates a manager appending to `log`.
    #[must_use]
    pub fn new(log: LogManager) -> Self {
        Self {
            inner: std::sync::Arc::new(Inner {
                log,
                next_tx: AtomicU64::new(1),
                active: Mutex::new(HashMap::new()),
                stats: Mutex::new(TxnStats::default()),
                obs: OnceLock::new(),
            }),
        }
    }

    /// Attaches the observability handle: user commits then carry span
    /// timing (including the group-commit force wait) and emit a
    /// [`EventKind::TxCommit`] event. At most one handle per manager;
    /// later calls are ignored.
    pub fn attach_obs(&self, obs: std::sync::Arc<Obs>) {
        let _ = self.inner.obs.set(obs);
    }

    /// Begins a transaction of `kind`, logging its begin record.
    pub fn begin(&self, kind: TxKind) -> TxId {
        let tx = TxId(self.inner.next_tx.fetch_add(1, Ordering::Relaxed));
        let lsn = self.inner.log.append(&LogRecord {
            tx_id: tx,
            prev_tx_lsn: Lsn::NULL,
            page_id: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            payload: LogPayload::TxBegin {
                system: kind.is_system(),
            },
        });
        self.inner.active.lock().insert(
            tx,
            ActiveTx {
                kind,
                first_lsn: lsn,
                last_lsn: lsn,
            },
        );
        tx
    }

    /// Appends a page-update record for `tx`, linking both chains, and
    /// returns its LSN. The caller applies the operation to the page and
    /// marks the frame dirty with this LSN.
    ///
    /// `prev_page_lsn` is the page's PageLSN *before* the update — the
    /// per-page chain pointer (Section 5.1.4).
    pub fn log_update(
        &self,
        tx: TxId,
        page_id: PageId,
        prev_page_lsn: Lsn,
        op: PageOp,
    ) -> Result<Lsn, TxError> {
        let mut active = self.inner.active.lock();
        let entry = active.get_mut(&tx).ok_or(TxError::NotActive(tx))?;
        let lsn = self.inner.log.append(&LogRecord {
            tx_id: tx,
            prev_tx_lsn: entry.last_lsn,
            page_id,
            prev_page_lsn,
            payload: LogPayload::Update { op },
        });
        entry.last_lsn = lsn;
        Ok(lsn)
    }

    /// Appends an arbitrary record on behalf of `tx` (page formats,
    /// full-page images, backup notices), linking the per-transaction
    /// chain and the given per-page chain pointer.
    pub fn log_other(
        &self,
        tx: TxId,
        page_id: PageId,
        prev_page_lsn: Lsn,
        payload: LogPayload,
    ) -> Result<Lsn, TxError> {
        let mut active = self.inner.active.lock();
        let entry = active.get_mut(&tx).ok_or(TxError::NotActive(tx))?;
        let lsn = self.inner.log.append(&LogRecord {
            tx_id: tx,
            prev_tx_lsn: entry.last_lsn,
            page_id,
            prev_page_lsn,
            payload,
        });
        entry.last_lsn = lsn;
        Ok(lsn)
    }

    /// Commits `tx`. User commits force the log through their commit
    /// record — concurrent committers combine into one group-commit
    /// flush — while system commits do not force at all (Figure 5 /
    /// Section 5.1.5). Returns the commit record's LSN.
    pub fn commit(&self, tx: TxId) -> Result<Lsn, TxError> {
        self.commit_traced(tx, TraceCtx::NONE)
    }

    /// [`TxnManager::commit`] carrying a sampled operation's trace
    /// context: the commit (and its log-force wait, with group-commit
    /// leader/follower attribution) is recorded as spans of that trace.
    pub fn commit_traced(&self, tx: TxId, ctx: TraceCtx) -> Result<Lsn, TxError> {
        let entry = {
            let mut active = self.inner.active.lock();
            active.remove(&tx).ok_or(TxError::NotActive(tx))?
        };
        let lsn = self.inner.log.append(&LogRecord {
            tx_id: tx,
            prev_tx_lsn: entry.last_lsn,
            page_id: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            payload: LogPayload::TxCommit {
                system: entry.kind.is_system(),
            },
        });
        match entry.kind {
            TxKind::User => {
                // Durability: the commit record (and everything before it)
                // must reach stable storage before commit returns. Forcing
                // *through* the commit record joins the log's group-commit
                // batch: concurrent committers share one flush, and records
                // appended after this commit stay unforced. The force runs
                // before the stats lock is taken — a committer absorbed as
                // a group-commit waiter must not block the leader (or any
                // peer) on it.
                let obs = self.inner.obs.get();
                {
                    let _span =
                        obs.map_or_else(spf_obs::SpanGuard::inert, |o| o.span(Span::Commit));
                    let tspan = match obs {
                        Some(o) => o.trace_span(ctx, SpanKind::Commit, WaitClass::Run, lsn.0),
                        None => spf_obs::ActiveSpan::inert(),
                    };
                    self.inner.log.force_through_traced(lsn, tspan.ctx());
                }
                if let Some(o) = obs {
                    o.emit(EventKind::TxCommit, lsn.0, 0);
                }
                self.inner.stats.lock().user_commits += 1;
            }
            TxKind::System => {
                // "System transactions do not require forcing the log
                // buffer to stable storage." A later dependent user commit
                // (or any force) carries this record out with it.
                self.inner.stats.lock().system_commits += 1;
            }
        }
        Ok(lsn)
    }

    /// Rolls back `tx`: walks the per-transaction chain newest-first,
    /// writes a compensation (CLR) record per update, and applies each
    /// compensation through `target` (the caller owns the buffer pool).
    /// Finishes with a TxAbort record.
    ///
    /// Per-page chain discipline: the CLR's `prev_page_lsn` is the page's
    /// current PageLSN (read via [`UndoTarget::page_lsn`]), and after
    /// application the page's PageLSN advances to the CLR's LSN — so CLRs
    /// are first-class members of the per-page chain and single-page
    /// recovery replays them like any other redo.
    pub fn abort(&self, tx: TxId, target: &dyn UndoTarget) -> Result<Lsn, TxError> {
        let entry = {
            let mut active = self.inner.active.lock();
            active.remove(&tx).ok_or(TxError::NotActive(tx))?
        };
        let mut clrs = 0u64;
        let mut last_lsn = entry.last_lsn;
        let mut cursor = entry.last_lsn;
        while cursor.is_valid() {
            let record = self
                .inner
                .log
                .read_record(cursor)
                .map_err(|e| TxError::LogBroken(e.to_string()))?;
            debug_assert_eq!(
                record.tx_id, tx,
                "per-transaction chain crossed transactions"
            );
            // CLRs are never undone; begin/format/etc. have no undo.
            if let LogPayload::Update { ref op } = record.payload {
                let comp = op.invert();
                let prev_page_lsn = target.page_lsn(record.page_id);
                let clr_lsn = self.inner.log.append(&LogRecord {
                    tx_id: tx,
                    prev_tx_lsn: last_lsn,
                    page_id: record.page_id,
                    prev_page_lsn,
                    payload: LogPayload::Clr {
                        op: comp.clone(),
                        undo_next: record.prev_tx_lsn,
                    },
                });
                target.apply(record.page_id, &comp, clr_lsn);
                clrs += 1;
                last_lsn = clr_lsn;
            }
            cursor = record.prev_tx_lsn;
        }
        let abort_lsn = self.inner.log.append(&LogRecord {
            tx_id: tx,
            prev_tx_lsn: last_lsn,
            page_id: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            payload: LogPayload::TxAbort,
        });
        if entry.kind == TxKind::User {
            // Like commit: force through the abort record via the
            // group-commit path rather than flushing the whole buffer.
            self.inner.log.force_through(abort_lsn);
        }
        let mut stats = self.inner.stats.lock();
        stats.aborts += 1;
        stats.clrs_written += clrs;
        Ok(abort_lsn)
    }

    /// Runs a structural change as a system transaction with bounded
    /// retry: begins a [`TxKind::System`] transaction, runs `body`, and
    /// commits when it reports [`SysAttempt::Done`]. On
    /// [`SysAttempt::Conflict`] — the body re-latched its pages and found
    /// a concurrent restructure got there first — the attempt is rolled
    /// back through `undo`, counted in [`TxnStats::system_conflicts`],
    /// and retried after a short back-off, up to `max_attempts` times.
    /// Errors roll back and propagate. Returns `Ok(None)` when every
    /// attempt conflicted; callers treat that as "someone else is
    /// maintaining this part of the tree" and move on.
    pub fn run_system<T, E>(
        &self,
        undo: &dyn UndoTarget,
        max_attempts: usize,
        mut body: impl FnMut(TxId) -> Result<SysAttempt<T>, E>,
    ) -> Result<Option<T>, E>
    where
        E: From<TxError>,
    {
        for attempt in 0..max_attempts.max(1) {
            let sys = self.begin(TxKind::System);
            match body(sys) {
                Ok(SysAttempt::Done(value)) => {
                    self.commit(sys)?;
                    return Ok(Some(value));
                }
                Ok(SysAttempt::Conflict) => {
                    // A conflicting body made no (or only partial) logged
                    // changes; roll whatever it did back and yield so the
                    // winning restructure can finish.
                    self.abort(sys, undo)?;
                    self.inner.stats.lock().system_conflicts += 1;
                    for _ in 0..(1u32 << attempt.min(6)) {
                        std::hint::spin_loop();
                    }
                    std::thread::yield_now();
                }
                Err(e) => {
                    let _ = self.abort(sys, undo);
                    return Err(e);
                }
            }
        }
        Ok(None)
    }

    /// Active transactions and their most recent LSN, for checkpoints.
    #[must_use]
    pub fn active_txns(&self) -> Vec<(TxId, Lsn)> {
        let mut out: Vec<(TxId, Lsn)> = self
            .inner
            .active
            .lock()
            .iter()
            .map(|(tx, st)| (*tx, st.last_lsn))
            .collect();
        out.sort_unstable_by_key(|(tx, _)| *tx);
        out
    }

    /// The begin-record LSN of the **oldest** active transaction — the
    /// lower bound every live undo chain needs the log to retain. `None`
    /// when no transaction is active. Used by the safe-WAL-truncation
    /// rule: truncating past this LSN could strand a rollback.
    #[must_use]
    pub fn oldest_active_begin(&self) -> Option<Lsn> {
        self.inner
            .active
            .lock()
            .values()
            .map(|st| st.first_lsn)
            .min()
    }

    /// Number of active transactions.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.inner.active.lock().len()
    }

    /// True if `tx` is currently active.
    #[must_use]
    pub fn is_active(&self, tx: TxId) -> bool {
        self.inner.active.lock().contains_key(&tx)
    }

    /// Forgets all active transactions (crash simulation; recovery rebuilds
    /// the table from the log). The id allocator continues past `floor` to
    /// avoid reusing ids of pre-crash transactions.
    pub fn reset_after_crash(&self, floor: u64) {
        self.inner.active.lock().clear();
        let current = self.inner.next_tx.load(Ordering::Relaxed);
        self.inner
            .next_tx
            .store(current.max(floor + 1), Ordering::Relaxed);
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> TxnStats {
        *self.inner.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as StdHashMap;

    fn ins(pos: u16, byte: u8) -> PageOp {
        PageOp::InsertRecord {
            pos,
            bytes: vec![byte; 4],
            ghost: false,
        }
    }

    /// Records applied compensations without touching real pages.
    #[derive(Default)]
    struct RecordingTarget {
        applied: Mutex<Vec<(PageId, PageOp, Lsn)>>,
    }

    impl UndoTarget for RecordingTarget {
        fn page_lsn(&self, _page: PageId) -> Lsn {
            Lsn::NULL
        }
        fn apply(&self, page: PageId, op: &PageOp, clr_lsn: Lsn) {
            self.applied.lock().push((page, op.clone(), clr_lsn));
        }
    }

    #[test]
    fn user_commit_forces_log() {
        let log = LogManager::for_testing();
        let mgr = TxnManager::new(log.clone());
        let tx = mgr.begin(TxKind::User);
        mgr.log_update(tx, PageId(1), Lsn::NULL, ins(0, 1)).unwrap();
        let before_forces = log.stats().forces;
        let commit_lsn = mgr.commit(tx).unwrap();
        assert_eq!(log.stats().forces, before_forces + 1);
        assert!(log.durable_lsn() > commit_lsn, "commit record durable");
    }

    #[test]
    fn system_commit_does_not_force() {
        let log = LogManager::for_testing();
        let mgr = TxnManager::new(log.clone());
        let tx = mgr.begin(TxKind::System);
        mgr.log_update(tx, PageId(1), Lsn::NULL, ins(0, 1)).unwrap();
        let before = log.stats().forces;
        let commit_lsn = mgr.commit(tx).unwrap();
        assert_eq!(log.stats().forces, before, "system commit must not force");
        assert!(
            log.durable_lsn() <= commit_lsn,
            "commit record still volatile"
        );
        // A later force (e.g. a dependent user commit) carries it out.
        log.force();
        assert!(log.durable_lsn() > commit_lsn);
    }

    #[test]
    fn run_system_commits_on_done() {
        let log = LogManager::for_testing();
        let mgr = TxnManager::new(log.clone());
        let target = RecordingTarget::default();
        let out: Result<Option<u32>, TxError> = mgr.run_system(&target, 4, |sys| {
            mgr.log_update(sys, PageId(1), Lsn::NULL, ins(0, 1))?;
            Ok(SysAttempt::Done(7))
        });
        assert_eq!(out.unwrap(), Some(7));
        let stats = mgr.stats();
        assert_eq!(stats.system_commits, 1);
        assert_eq!(stats.system_conflicts, 0);
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn run_system_retries_conflicts_then_succeeds() {
        let log = LogManager::for_testing();
        let mgr = TxnManager::new(log.clone());
        let target = RecordingTarget::default();
        let mut attempts = 0;
        let out: Result<Option<&str>, TxError> = mgr.run_system(&target, 4, |sys| {
            attempts += 1;
            if attempts < 3 {
                // Simulate partial work invalidated by a concurrent
                // restructure: the CLR must undo it on retry.
                mgr.log_update(sys, PageId(2), Lsn::NULL, ins(0, 9))?;
                Ok(SysAttempt::Conflict)
            } else {
                Ok(SysAttempt::Done("adopted"))
            }
        });
        assert_eq!(out.unwrap(), Some("adopted"));
        let stats = mgr.stats();
        assert_eq!(stats.system_conflicts, 2);
        assert_eq!(stats.aborts, 2);
        assert_eq!(stats.clrs_written, 2, "conflicted work is undone");
        assert_eq!(stats.system_commits, 1);
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn run_system_gives_up_after_max_attempts() {
        let log = LogManager::for_testing();
        let mgr = TxnManager::new(log);
        let target = RecordingTarget::default();
        let out: Result<Option<()>, TxError> =
            mgr.run_system(&target, 3, |_| Ok(SysAttempt::Conflict));
        assert_eq!(out.unwrap(), None);
        let stats = mgr.stats();
        assert_eq!(stats.system_conflicts, 3);
        assert_eq!(stats.system_commits, 0);
        assert_eq!(mgr.active_count(), 0, "no transaction leaks");
    }

    #[test]
    fn per_transaction_chain_links_updates() {
        let log = LogManager::for_testing();
        let mgr = TxnManager::new(log.clone());
        let tx = mgr.begin(TxKind::User);
        let a = mgr.log_update(tx, PageId(1), Lsn::NULL, ins(0, 1)).unwrap();
        let b = mgr.log_update(tx, PageId(2), Lsn::NULL, ins(0, 2)).unwrap();
        let c = mgr.log_update(tx, PageId(3), Lsn::NULL, ins(0, 3)).unwrap();
        let rec_c = log.read_record(c).unwrap();
        let rec_b = log.read_record(b).unwrap();
        let rec_a = log.read_record(a).unwrap();
        assert_eq!(rec_c.prev_tx_lsn, b);
        assert_eq!(rec_b.prev_tx_lsn, a);
        assert!(
            rec_a.prev_tx_lsn.is_valid(),
            "first update chains to the begin record"
        );
    }

    #[test]
    fn abort_applies_compensations_in_reverse() {
        let log = LogManager::for_testing();
        let mgr = TxnManager::new(log.clone());
        let tx = mgr.begin(TxKind::User);
        mgr.log_update(tx, PageId(1), Lsn::NULL, ins(0, 1)).unwrap();
        mgr.log_update(tx, PageId(2), Lsn::NULL, ins(0, 2)).unwrap();
        mgr.log_update(tx, PageId(1), Lsn::NULL, ins(1, 3)).unwrap();

        let target = RecordingTarget::default();
        mgr.abort(tx, &target).unwrap();
        let applied = target.applied.into_inner();

        // Compensations arrive newest-first and are the inverses.
        assert_eq!(applied.len(), 3);
        assert_eq!(applied[0].0, PageId(1));
        assert!(matches!(applied[0].1, PageOp::RemoveRecord { pos: 1, .. }));
        assert_eq!(applied[1].0, PageId(2));
        assert!(matches!(applied[1].1, PageOp::RemoveRecord { pos: 0, .. }));
        assert_eq!(applied[2].0, PageId(1));
        assert!(matches!(applied[2].1, PageOp::RemoveRecord { pos: 0, .. }));

        let stats = mgr.stats();
        assert_eq!(stats.aborts, 1);
        assert_eq!(stats.clrs_written, 3);
        assert!(!mgr.is_active(tx));
    }

    #[test]
    fn clrs_carry_undo_next_pointers() {
        let log = LogManager::for_testing();
        let mgr = TxnManager::new(log.clone());
        let tx = mgr.begin(TxKind::User);
        let u1 = mgr.log_update(tx, PageId(1), Lsn::NULL, ins(0, 1)).unwrap();
        let _u2 = mgr.log_update(tx, PageId(1), Lsn::NULL, ins(1, 2)).unwrap();
        mgr.abort(tx, &RecordingTarget::default()).unwrap();

        // Find the CLRs in the log and check undo_next skips the undone record.
        let records = log.scan_from(Lsn::NULL).unwrap();
        let clrs: Vec<&LogRecord> = records
            .iter()
            .map(|(_, r)| r)
            .filter(|r| matches!(r.payload, LogPayload::Clr { .. }))
            .collect();
        assert_eq!(clrs.len(), 2);
        match &clrs[0].payload {
            LogPayload::Clr { undo_next, .. } => assert_eq!(*undo_next, u1),
            _ => unreachable!(),
        }
        match &clrs[1].payload {
            LogPayload::Clr { undo_next, .. } => {
                assert!(undo_next.is_valid(), "points to the begin record");
                assert!(*undo_next < u1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn abort_round_trips_page_contents() {
        // Full loop: apply ops to real pages, roll back, contents restored.
        use spf_storage::{Page, PageType, SlottedPage, DEFAULT_PAGE_SIZE};

        struct MapTarget {
            pages: Mutex<StdHashMap<PageId, Page>>,
        }
        impl UndoTarget for MapTarget {
            fn page_lsn(&self, page: PageId) -> Lsn {
                Lsn(self.pages.lock()[&page].page_lsn())
            }
            fn apply(&self, page: PageId, op: &PageOp, clr_lsn: Lsn) {
                let mut pages = self.pages.lock();
                let p = pages.get_mut(&page).unwrap();
                op.redo(p);
                p.set_page_lsn(clr_lsn.0);
            }
        }

        let log = LogManager::for_testing();
        let mgr = TxnManager::new(log.clone());
        let target = MapTarget {
            pages: Mutex::new(StdHashMap::new()),
        };
        target.pages.lock().insert(
            PageId(1),
            Page::new_formatted(DEFAULT_PAGE_SIZE, PageId(1), PageType::BTreeLeaf),
        );
        {
            let mut pages = target.pages.lock();
            let p = pages.get_mut(&PageId(1)).unwrap();
            let mut sp = SlottedPage::new(p);
            sp.push(b"keep", false).unwrap();
        }
        let before = target.pages.lock()[&PageId(1)].clone();

        let tx = mgr.begin(TxKind::User);
        for (i, op) in [
            ins(1, 0xAA),
            PageOp::ReplaceRecord {
                pos: 0,
                old_bytes: b"keep".to_vec(),
                new_bytes: b"kept!".to_vec(),
            },
            PageOp::SetGhost {
                pos: 0,
                old: false,
                new: true,
            },
        ]
        .into_iter()
        .enumerate()
        {
            let mut pages = target.pages.lock();
            let p = pages.get_mut(&PageId(1)).unwrap();
            op.redo(p);
            drop(pages);
            mgr.log_update(tx, PageId(1), Lsn(i as u64), op).unwrap();
        }
        assert_ne!(
            target.pages.lock()[&PageId(1)].as_bytes(),
            before.as_bytes()
        );

        mgr.abort(tx, &target).unwrap();

        // Logical contents restored; PageLSN advanced by the CLRs.
        let mut after = target.pages.lock().remove(&PageId(1)).unwrap();
        assert!(after.page_lsn() > 0, "CLRs must advance the PageLSN");
        let sp = SlottedPage::new(&mut after);
        let got: Vec<(Vec<u8>, bool)> = sp.iter().map(|(_, r, g)| (r.to_vec(), g)).collect();
        assert_eq!(got, vec![(b"keep".to_vec(), false)]);
    }

    #[test]
    fn active_table_tracks_begin_and_end() {
        let log = LogManager::for_testing();
        let mgr = TxnManager::new(log);
        let a = mgr.begin(TxKind::User);
        let b = mgr.begin(TxKind::System);
        assert_eq!(mgr.active_count(), 2);
        let actives = mgr.active_txns();
        assert_eq!(actives.len(), 2);
        assert_eq!(actives[0].0, a);
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
        assert_eq!(mgr.active_count(), 0);
        assert_eq!(mgr.commit(a), Err(TxError::NotActive(a)));
    }

    #[test]
    fn reset_after_crash_clears_and_advances_ids() {
        let log = LogManager::for_testing();
        let mgr = TxnManager::new(log);
        let t1 = mgr.begin(TxKind::User);
        mgr.reset_after_crash(t1.0 + 10);
        assert_eq!(mgr.active_count(), 0);
        let t2 = mgr.begin(TxKind::User);
        assert!(t2.0 > t1.0 + 10, "ids must not be reused after a crash");
    }
}
