//! # spf-txn
//!
//! Transaction management for the single-page-failure workspace (Graefe &
//! Kuno, VLDB 2012): user transactions, the paper's **system
//! transactions**, rollback over the per-transaction log chain, and a
//! small exclusive lock table.
//!
//! The paper's Figure 5 contrasts the two transaction kinds; this crate
//! implements exactly that table:
//!
//! | | user transaction | system transaction |
//! |---|---|---|
//! | invocation | application request | system-internal logic |
//! | database effects | logical contents | representation only (contents-neutral) |
//! | locks | acquires locks | none |
//! | commit | **forces the log** | no force — "their commit log records will be forced to stable storage prior to (or with) the commit log record of any dependent user transactions" |
//!
//! The page recovery index is maintained by system transactions
//! (Section 5.2.4): "while each update of the page recovery index could
//! and should be a transaction, it could be treated as a system
//! transaction, which does not require forcing the log upon commit."

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lock;
pub mod manager;

pub use lock::{LockError, LockTable};
pub use manager::{SysAttempt, TxError, TxKind, TxnManager, TxnStats, UndoTarget};
