//! A minimal exclusive lock table for user transactions.
//!
//! System transactions never appear here: the paper's Figure 5 notes they
//! rely on latches only. User transactions take exclusive key locks before
//! updates; conflicts fail fast (no blocking, no deadlock detection — the
//! workspace's workloads are single-threaded, the table exists to keep the
//! transaction semantics honest and testable).

use std::collections::HashMap;

use parking_lot::Mutex;

use spf_wal::TxId;

/// Lock acquisition failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockError {
    /// The key that was contended.
    pub key: u64,
    /// The transaction currently holding it.
    pub holder: TxId,
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "key {:#x} is locked by {}", self.key, self.holder)
    }
}

impl std::error::Error for LockError {}

/// Exclusive key-hash lock table.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: Mutex<HashMap<u64, TxId>>,
}

impl LockTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires an exclusive lock on `key` for `tx`. Re-acquisition by the
    /// holder succeeds; a conflict fails immediately.
    pub fn lock(&self, tx: TxId, key: u64) -> Result<(), LockError> {
        let mut locks = self.locks.lock();
        match locks.get(&key) {
            Some(&holder) if holder != tx => Err(LockError { key, holder }),
            _ => {
                locks.insert(key, tx);
                Ok(())
            }
        }
    }

    /// Releases every lock held by `tx` (commit or abort).
    pub fn release_all(&self, tx: TxId) {
        self.locks.lock().retain(|_, holder| *holder != tx);
    }

    /// Number of locks currently held.
    #[must_use]
    pub fn held(&self) -> usize {
        self.locks.lock().len()
    }

    /// Clears the table (crash simulation: locks are volatile).
    pub fn clear(&self) {
        self.locks.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_semantics() {
        let table = LockTable::new();
        let a = TxId(1);
        let b = TxId(2);
        table.lock(a, 42).unwrap();
        table.lock(a, 42).unwrap(); // re-entrant for the holder
        assert_eq!(table.lock(b, 42), Err(LockError { key: 42, holder: a }));
        table.lock(b, 43).unwrap();
        assert_eq!(table.held(), 2);
    }

    #[test]
    fn release_all_frees_only_own_locks() {
        let table = LockTable::new();
        table.lock(TxId(1), 1).unwrap();
        table.lock(TxId(1), 2).unwrap();
        table.lock(TxId(2), 3).unwrap();
        table.release_all(TxId(1));
        assert_eq!(table.held(), 1);
        table.lock(TxId(2), 1).unwrap();
    }

    #[test]
    fn clear_models_crash() {
        let table = LockTable::new();
        table.lock(TxId(1), 1).unwrap();
        table.clear();
        assert_eq!(table.held(), 0);
    }
}
