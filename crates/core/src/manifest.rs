//! The database manifest: a tiny CRC-guarded root record for a
//! file-backed database directory.
//!
//! The manifest is the one piece of metadata that cannot be rebuilt from
//! the WAL — it tells restart how to *find* the WAL: the page geometry,
//! the fault-injector seed, whether a mirror device exists, how much of
//! the log has been archived, and where backup-slot allocation must
//! resume. It is updated with the classic create–rename–fsync protocol:
//! write `manifest.spfm.tmp`, fsync it, rename over `manifest.spfm`,
//! fsync the directory. A crash at any point leaves either the old or
//! the new manifest intact — never a torn one — and [`Manifest::load`]
//! proves which one it got via a CRC-32C over the whole record.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use spf_util::{crc32c, Decoder, Encoder};
use spf_wal::Lsn;

/// File name of the manifest inside a database directory.
pub const MANIFEST_FILE: &str = "manifest.spfm";
/// Temporary name used during the create–rename–fsync update.
pub const MANIFEST_TMP: &str = "manifest.spfm.tmp";

const MAGIC: u32 = 0x5350_464D; // "SPFM"
const VERSION: u16 = 1;

/// Durable root metadata for a file-backed database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Page size in bytes; every device in the directory uses it.
    pub page_size: usize,
    /// Capacity of the data device in pages.
    pub data_pages: u64,
    /// Fault-injector RNG seed the database was created with.
    pub seed: u64,
    /// Whether `mirror.dat` exists and is kept synchronously up to date.
    pub mirror: bool,
    /// Everything below this LSN is covered by the log archive (or was
    /// never needed); restart re-arms the archiver's watermark from it.
    pub archived_through: Lsn,
    /// High-water mark of page allocation: every `PageId` below this may
    /// be in use, so restart's allocator must not hand them out again.
    pub alloc_high_water: u64,
    /// The most recent full backup, if any: first backup slot and the
    /// LSN it was taken at.
    pub last_full_backup: Option<(u64, Lsn)>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(MAGIC);
        enc.put_u16(VERSION);
        enc.put_u64(self.page_size as u64);
        enc.put_u64(self.data_pages);
        enc.put_u64(self.seed);
        enc.put_u8(u8::from(self.mirror));
        enc.put_u64(self.archived_through.0);
        enc.put_u64(self.alloc_high_water);
        match self.last_full_backup {
            Some((slot, lsn)) => {
                enc.put_u8(1);
                enc.put_u64(slot);
                enc.put_u64(lsn.0);
            }
            None => enc.put_u8(0),
        }
        let crc = crc32c(enc.as_slice());
        enc.put_u32(crc);
        enc.finish()
    }

    fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 4 {
            return Err("manifest too short".into());
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
        if crc32c(body) != stored {
            return Err("manifest checksum mismatch".into());
        }
        let mut dec = Decoder::new(body);
        let mut take = || -> Result<Self, spf_util::codec::DecodeError> {
            let magic = dec.get_u32()?;
            if magic != MAGIC {
                return Err(spf_util::codec::DecodeError::InvalidTag {
                    tag: (magic & 0xFF) as u8,
                    what: "manifest magic",
                });
            }
            let version = dec.get_u16()?;
            if version != VERSION {
                return Err(spf_util::codec::DecodeError::InvalidTag {
                    tag: version as u8,
                    what: "manifest version",
                });
            }
            let page_size = dec.get_u64()? as usize;
            let data_pages = dec.get_u64()?;
            let seed = dec.get_u64()?;
            let mirror = dec.get_u8()? != 0;
            let archived_through = Lsn(dec.get_u64()?);
            let alloc_high_water = dec.get_u64()?;
            let last_full_backup = match dec.get_u8()? {
                0 => None,
                _ => {
                    let slot = dec.get_u64()?;
                    let lsn = Lsn(dec.get_u64()?);
                    Some((slot, lsn))
                }
            };
            Ok(Self {
                page_size,
                data_pages,
                seed,
                mirror,
                archived_through,
                alloc_high_water,
                last_full_backup,
            })
        };
        take().map_err(|e| format!("manifest decode failed: {e}"))
    }

    /// Durably writes the manifest into `dir` with create–rename–fsync.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        self.save_until_step(dir, usize::MAX)
    }

    /// The crash-point-enumerable core of [`Manifest::save`]. `steps`
    /// counts how many protocol steps complete before a simulated crash:
    /// 0 = a partial tmp file was written, 1 = the tmp file is complete
    /// and fsynced but not renamed, 2 = renamed but the directory entry
    /// is not yet fsynced, 3+ = the full protocol ran. Production code
    /// passes `usize::MAX`.
    pub(crate) fn save_until_step(&self, dir: &Path, steps: usize) -> io::Result<()> {
        let bytes = self.encode();
        let tmp: PathBuf = dir.join(MANIFEST_TMP);
        let mut file = File::create(&tmp)?;
        if steps == 0 {
            // Crash mid-write: only a prefix of the record reaches disk.
            file.write_all(&bytes[..bytes.len() / 2])?;
            file.sync_all()?;
            return Ok(());
        }
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        if steps == 1 {
            return Ok(());
        }
        fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        if steps == 2 {
            return Ok(());
        }
        sync_dir(dir)
    }

    /// Loads the manifest from `dir`, validating magic, version, and
    /// CRC. Cleans up any leftover `manifest.spfm.tmp` from an
    /// interrupted save (the rename never happened, so the tmp file is
    /// dead weight either way).
    pub fn load(dir: &Path) -> Result<Self, String> {
        let tmp = dir.join(MANIFEST_TMP);
        if tmp.exists() {
            let _ = fs::remove_file(&tmp);
        }
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::decode(&bytes)
    }
}

/// Fsyncs a directory so a just-renamed entry survives power loss.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    OpenOptions::new().read(true).open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tempdir::TempDir;

    fn sample(seed: u64) -> Manifest {
        Manifest {
            page_size: 4096,
            data_pages: 128,
            seed,
            mirror: seed.is_multiple_of(2),
            archived_through: Lsn(seed * 7),
            alloc_high_water: seed + 3,
            last_full_backup: if seed.is_multiple_of(3) {
                Some((seed, Lsn(seed * 11)))
            } else {
                None
            },
        }
    }

    #[test]
    fn round_trip() {
        let dir = TempDir::new("manifest").unwrap();
        let m = sample(6);
        m.save(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), m);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = TempDir::new("manifest").unwrap();
        sample(1).save(dir.path()).unwrap();
        let path = dir.path().join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(Manifest::load(dir.path()).is_err());
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = TempDir::new("manifest").unwrap();
        assert!(Manifest::load(dir.path()).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// A crash at any step of the create–rename–fsync protocol
        /// leaves either the old or the new manifest readable — never a
        /// torn hybrid. (The step-2 "renamed but directory unsynced"
        /// case can surface either version on real hardware; on a live
        /// filesystem the rename is visible, so we assert it reads as
        /// exactly old-or-new too.)
        #[test]
        fn crash_during_save_leaves_old_or_new(seed in 0u64..1000, step in 0usize..4) {
            let dir = TempDir::new("manifest-crash").unwrap();
            let old = sample(seed);
            old.save(dir.path()).unwrap();
            let new = sample(seed + 1);
            new.save_until_step(dir.path(), step).unwrap();
            let got = Manifest::load(dir.path()).unwrap();
            prop_assert!(got == old || got == new, "torn manifest: {got:?}");
            // After the rename step the new version must win.
            if step >= 2 {
                prop_assert_eq!(got, new);
            }
        }
    }
}
