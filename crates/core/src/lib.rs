//! # spf — single-page failures: detection and recovery
//!
//! A reproduction of Graefe & Kuno, *"Definition, Detection, and Recovery
//! of Single-Page Failures, a Fourth Class of Database Failures"* (VLDB
//! 2012, PVLDB 5(7):646–655), as a complete embedded storage engine.
//!
//! The paper's claim: alongside transaction, media, and system failures,
//! databases should recognize **single-page failures** — "all failures to
//! read a data page correctly and with plausible contents despite all
//! correction attempts in lower system levels" — detect them continuously
//! (checksums + fence-key verification + a PageLSN cross-check against a
//! new **page recovery index**), and repair them inline by replaying the
//! **per-page log chain** over a backup copy, so that "affected
//! transactions merely wait a short time, perhaps less than a second".
//!
//! This crate is the façade: [`Database`] wires the substrate crates
//! (simulated storage with fault injection, write-ahead log, buffer pool,
//! Foster B-tree, transactions, recovery) into one engine.
//!
//! ```
//! use spf::{Database, DatabaseConfig};
//! use spf_storage::{CorruptionMode, FaultSpec};
//!
//! let db = Database::create(DatabaseConfig::default()).unwrap();
//!
//! // Ordinary transactional use.
//! let tx = db.begin();
//! db.put(tx, b"hello", b"world").unwrap();
//! db.commit(tx).unwrap();
//! db.checkpoint().unwrap();
//!
//! // A silently corrupted page on "disk"…
//! let victim = db.any_leaf_page().unwrap();
//! db.inject_fault(victim, FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 8 }));
//! db.drop_cache();
//!
//! // …is detected and repaired inline: the read still succeeds.
//! assert_eq!(db.get(b"hello").unwrap(), Some(b"world".to_vec()));
//! assert_eq!(db.stats().spf.recoveries, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod db;
pub mod error;
pub mod manifest;
pub mod stats;

pub use config::{ArchiveConfig, DatabaseConfig};
pub use db::Database;
pub use error::DbError;
pub use manifest::Manifest;
pub use stats::DbStats;

// Re-export the pieces users touch through the façade.
pub use spf_archive::{ArchiveReport, ArchiveStats, MergePolicy};
pub use spf_btree::{KvPairs, VerifyMode};
pub use spf_buffer::{FetchHint, PoolStats, MAX_PRIORITY};
pub use spf_obs::{
    Event, EventKind, HistogramSnapshot, MetricsSnapshot, Obs, Observable, RepairLedger, Trace,
};
pub use spf_prefetch::{
    AccessContext, BackgroundIo, GovernorConfig, GovernorStats, IoGovernor, PrefetchConfig,
    PrefetchStats, Prefetcher,
};
pub use spf_recovery::{BackupPolicy, FailureClass};
pub use spf_scrub::{
    DetectorClass, ScrubConfig, ScrubCycleReport, ScrubEscalation, ScrubFinding, ScrubStats,
};
pub use spf_storage::{CorruptionMode, FaultSpec, PageId};
pub use spf_util::{IoCostModel, SimDuration};
pub use spf_wal::{Lsn, TxId};
