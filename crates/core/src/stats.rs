//! Aggregated engine statistics for the experiment harness.

use spf_archive::ArchiveStats;
use spf_btree::TreeStats;
use spf_buffer::PoolStats;
use spf_obs::TracerStats;
use spf_prefetch::{GovernorStats, PrefetchStats};
use spf_recovery::{BackupStats, MaintainerStats, PriStats, SpfStats};
use spf_scrub::ScrubStats;
use spf_storage::DeviceStats;
use spf_txn::TxnStats;
use spf_util::SimDuration;
use spf_wal::LogStats;

/// Everything the engine counts, in one snapshot.
#[derive(Debug, Clone)]
pub struct DbStats {
    /// Buffer-pool behaviour and failure detections.
    pub pool: PoolStats,
    /// Log volume, forces, and per-kind record counts.
    pub log: LogStats,
    /// Transaction commits/aborts by kind.
    pub txn: TxnStats,
    /// B-tree traversal and maintenance counters.
    pub tree: TreeStats,
    /// Single-page recovery outcomes.
    pub spf: SpfStats,
    /// Page-recovery-index size and compression.
    pub pri: PriStats,
    /// Backup-store activity.
    pub backups: BackupStats,
    /// Data-device I/O counters.
    pub device: DeviceStats,
    /// Backup-device I/O counters.
    pub backup_device: DeviceStats,
    /// Log-archive activity (runs, merges, queries, live footprint).
    pub archive: ArchiveStats,
    /// Online-scrubber activity: sweeps, findings per detector class,
    /// repairs, and recorded Figure 1 escalations of failed repairs.
    pub scrub: ScrubStats,
    /// PRI-maintenance activity: PriUpdate records logged, policy
    /// backups, and stale-PageLSN detections. Carried as the whole
    /// struct so a counter added there can never silently drop out.
    pub maintainer: MaintainerStats,
    /// Predictive-prefetcher pipeline counters (observed faults,
    /// predictions, issue outcomes). Install/hit/waste accounting is
    /// pool-side, in [`pool`](DbStats::pool).
    pub prefetch: PrefetchStats,
    /// Background-I/O governor counters: pages granted per consumer,
    /// prefetch deferrals, and scrub throttle waits.
    pub governor: GovernorStats,
    /// Causal-tracing counters: sampled traces, spans recorded, live
    /// per-thread rings.
    pub trace: TracerStats,
    /// Current simulated time.
    pub now: SimDuration,
}

impl DbStats {
    /// Log flushes per committed user transaction — the group-commit
    /// effectiveness ratio. 1.0 means every commit paid its own flush;
    /// under concurrent committers the combined-force protocol drives it
    /// below 1.0 (waiters absorb into a leader's flush). Write-backs and
    /// checkpoints also force the log, so a single-threaded workload can
    /// sit slightly above 1.0.
    #[must_use]
    pub fn forces_per_commit(&self) -> f64 {
        if self.txn.user_commits == 0 {
            0.0
        } else {
            self.log.forces as f64 / self.txn.user_commits as f64
        }
    }

    /// Concurrency pressure on the tree: descent retries plus structural
    /// back-offs per committed user transaction. Exactly zero on a
    /// single-threaded workload (every retry path needs a concurrent
    /// restructure to fire); small but non-zero under concurrent
    /// writers — experiment e18 reports it alongside throughput.
    #[must_use]
    pub fn tree_conflicts_per_commit(&self) -> f64 {
        if self.txn.user_commits == 0 {
            0.0
        } else {
            (self.tree.descent_retries + self.tree.restructure_conflicts) as f64
                / self.txn.user_commits as f64
        }
    }
}
