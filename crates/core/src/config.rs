//! Database configuration.

use spf_btree::VerifyMode;
use spf_prefetch::PrefetchConfig;
use spf_recovery::BackupPolicy;
use spf_scrub::ScrubConfig;
use spf_util::IoCostModel;

/// Log-archive configuration: whether the engine keeps a partitioned
/// log archive (enabling WAL truncation) and how aggressively its runs
/// are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveConfig {
    /// Wire up the archiver. Without it the WAL can never be truncated
    /// (the seed behaviour): `Database::archive_now` and
    /// `Database::truncate_wal` become errors / no-ops.
    pub enabled: bool,
    /// Leveled-merge fanout: a level holding this many runs is merged
    /// into one run on the next level. 0 disables merging.
    pub merge_fanout: usize,
}

impl ArchiveConfig {
    /// Archiving on, default leveled merging (fanout 4).
    #[must_use]
    pub const fn default_on() -> Self {
        Self {
            enabled: true,
            merge_fanout: 4,
        }
    }

    /// No archive at all (the traditional engine).
    #[must_use]
    pub const fn disabled() -> Self {
        Self {
            enabled: false,
            merge_fanout: 0,
        }
    }
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        Self::default_on()
    }
}

/// Configuration for [`crate::Database`].
#[derive(Debug, Clone, Copy)]
pub struct DatabaseConfig {
    /// Page size in bytes (default 8 KiB).
    pub page_size: usize,
    /// Capacity of the data device in pages.
    pub data_pages: u64,
    /// Buffer-pool frames.
    pub pool_frames: usize,
    /// Simulated I/O cost model shared by the data device, the backup
    /// device, and the log.
    pub io_cost: IoCostModel,
    /// Seed for the fault injector's deterministic RNG.
    pub seed: u64,
    /// Enable the paper's machinery: the page recovery index with its
    /// read-time PageLSN cross-check, PRI maintenance logging, and inline
    /// single-page recovery. With `false` the engine behaves like a
    /// traditional system: detected page failures escalate to media
    /// failures (experiment E1's baseline).
    pub single_page_recovery: bool,
    /// When to take per-page backup copies (Section 6's policy).
    pub backup_policy: BackupPolicy,
    /// Fence-key verification during traversals (Section 4.2).
    pub verify_mode: VerifyMode,
    /// Whether this node has only this one storage device — if so, an
    /// unhandled media failure escalates to a system failure (Figure 1).
    pub single_device_node: bool,
    /// The log archive: per-page-sorted, indexed runs that let the WAL
    /// be truncated while keeping all pre-truncation page history
    /// recoverable (see `spf-archive`).
    pub archive: ArchiveConfig,
    /// The online page scrubber: background detection sweeps over cold
    /// pages, with queue-driven self-healing repair (see `spf-scrub`).
    /// `Database::scrub_now` runs one sweep; `Database::start_scrubber`
    /// runs sweeps continuously on a background thread.
    pub scrub: ScrubConfig,
    /// The predictive prefetcher: per-access-context delta prediction
    /// over observed page faults, issuing background reads through the
    /// same in-flight markers as foreground misses (see `spf-prefetch`).
    /// Enabled by default, but *passive* until
    /// `Database::start_prefetcher` spins up the polling thread (or an
    /// experiment drives `Prefetcher::poll` directly) — the observer
    /// only learns and queues, so the seed's I/O patterns are unchanged
    /// until polling starts.
    pub prefetch: PrefetchConfig,
    /// Keep a synchronous mirror of the data device (Section 5.2.2:
    /// "other copies in a mirror or a RAID array" as a backup-page
    /// source). Every write and sync goes to both devices; single-page
    /// recovery prefers the mirror copy, and
    /// `Database::media_recover_from_mirror` rebuilds a failed primary
    /// from it.
    pub mirror: bool,
    /// For file-backed databases: skip simulated-clock charges on data
    /// I/O and let the real device's latency show through — the mode
    /// real-device benchmark rows use. Simulated-time experiments keep
    /// this off so Section 6 arithmetic stays deterministic.
    pub wall_clock_io: bool,
    /// Observability: flight-recorder events, hot-path span timing, and
    /// the repair audit ledger (see `spf-obs`). `Database::metrics_snapshot`
    /// works either way (the stats registry is always live); this gates
    /// only per-event tracing. Can also be toggled at runtime via
    /// `Database::obs`. Experiment e20 measures the overhead (< 5%).
    pub obs: bool,
    /// Causal tracing: every Nth `put_auto` (and every Nth scrub sweep)
    /// is sampled into a trace tree spanning descent, buffer faults,
    /// latch and group-commit waits (see `spf-trace`). 0 disables
    /// sampling — unsampled operations pay one branch. Can be retuned at
    /// runtime via `Database::obs().set_trace_sampling`. Experiment e22
    /// measures the overhead (< 5%).
    pub trace_sample_every: u64,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        Self {
            page_size: spf_storage::DEFAULT_PAGE_SIZE,
            data_pages: 4096,
            pool_frames: 256,
            io_cost: IoCostModel::free(),
            seed: 42,
            single_page_recovery: true,
            backup_policy: BackupPolicy::paper_default(),
            verify_mode: VerifyMode::Continuous,
            single_device_node: false,
            archive: ArchiveConfig::default_on(),
            scrub: ScrubConfig::default_on(),
            prefetch: PrefetchConfig::default_on(),
            mirror: false,
            wall_clock_io: false,
            obs: true,
            trace_sample_every: 0,
        }
    }
}

impl DatabaseConfig {
    /// A configuration modelling a traditional engine: no single-page
    /// machinery at all (no PRI, no fence verification, no recovery).
    #[must_use]
    pub fn traditional() -> Self {
        Self {
            single_page_recovery: false,
            backup_policy: BackupPolicy::disabled(),
            verify_mode: VerifyMode::Off,
            archive: ArchiveConfig::disabled(),
            scrub: ScrubConfig::disabled(),
            prefetch: PrefetchConfig::disabled(),
            ..Self::default()
        }
    }

    /// Default configuration with the 2012-disk cost model, for
    /// experiments that report simulated times.
    #[must_use]
    pub fn with_disk_costs() -> Self {
        Self {
            io_cost: IoCostModel::disk_2012(),
            ..Self::default()
        }
    }
}
