//! Database-level errors, expressed in the paper's failure taxonomy.

use spf_btree::BTreeError;
use spf_recovery::FailureClass;
use spf_txn::{LockError, TxError};

/// Errors surfaced by [`crate::Database`] operations.
#[derive(Debug)]
pub enum DbError {
    /// A failure of the stated class that the engine could not contain.
    /// For a single-device node, an escalated media failure is reported
    /// as a system failure (Figure 1).
    Failure {
        /// The failure class after escalation.
        class: FailureClass,
        /// What happened.
        reason: String,
    },
    /// The key is already present (insert) or absent (delete).
    Tree(BTreeError),
    /// A lock conflict (fail-fast lock table).
    Locked(LockError),
    /// Transaction bookkeeping error.
    Tx(TxError),
    /// Restart or media recovery itself failed.
    RecoveryFailed(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Failure { class, reason } => write!(f, "{class}: {reason}"),
            DbError::Tree(e) => write!(f, "{e}"),
            DbError::Locked(e) => write!(f, "{e}"),
            DbError::Tx(e) => write!(f, "{e}"),
            DbError::RecoveryFailed(e) => write!(f, "recovery failed: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<TxError> for DbError {
    fn from(e: TxError) -> Self {
        DbError::Tx(e)
    }
}

impl From<LockError> for DbError {
    fn from(e: LockError) -> Self {
        DbError::Locked(e)
    }
}

impl DbError {
    /// The failure class this error represents, if it is a failure.
    #[must_use]
    pub fn failure_class(&self) -> Option<FailureClass> {
        match self {
            DbError::Failure { class, .. } => Some(*class),
            _ => None,
        }
    }
}
