//! The [`Database`] façade: substrate wiring, transactional KV API,
//! failure injection, and the four recovery paths.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use spf_archive::{ArchiveReport, ArchiveStore, LogArchiver, MergePolicy};
use spf_btree::{BTreeError, BumpAllocator, FosterBTree, KvPairs, PageAllocator};
use spf_buffer::{BufferPool, BufferPoolConfig, FetchError};
use spf_obs::{
    ActiveSpan, EventKind, MetricsSnapshot, Obs, Span, SpanKind, Stitched, TraceCtx, WaitClass,
};
use spf_prefetch::{AccessObserver, GovernorConfig, IoGovernor, Prefetcher};
use spf_recovery::{
    BackupStore, FailureClass, MediaRecovery, MediaReport, PageRecoveryIndex, PriMaintainer,
    RestartReport, SinglePageRecovery, SystemRecovery,
};
use spf_scrub::{ScanExtent, ScrubCycleReport, Scrubber};
use spf_storage::{
    Device, FaultSpec, FileDevice, MemDevice, MirrorPair, Page, PageId, PageType, StorageDevice,
};
use spf_txn::{LockTable, TxKind, TxnManager};
use spf_util::SimClock;
use spf_wal::{BackupRef, LogManager, LogPayload, LogRecord, Lsn, TxId, WalFiles};

use crate::config::DatabaseConfig;
use crate::error::DbError;
use crate::manifest::Manifest;
use crate::stats::DbStats;

/// File name of the primary data device inside a database directory.
const DATA_FILE: &str = "data.dat";
/// File name of the synchronous mirror device.
const MIRROR_FILE: &str = "mirror.dat";
/// File name of the backup-page device.
const BACKUP_FILE: &str = "backup.dat";
/// Subdirectory holding the numbered WAL segments.
const WAL_DIR: &str = "wal";
/// Subdirectory holding the archive's run files.
const ARCHIVE_DIR: &str = "archive";
/// Initial capacity (pages) of the backup device.
const BACKUP_PAGES: u64 = 256;

/// The database engine. All substrate handles are shared; `Database`
/// itself is not `Clone` (one façade per engine).
pub struct Database {
    config: DatabaseConfig,
    clock: Arc<SimClock>,
    device: Device,
    mirror: Option<Device>,
    path: Option<PathBuf>,
    log: LogManager,
    pool: BufferPool,
    txn: TxnManager,
    locks: LockTable,
    alloc: Arc<BumpAllocator>,
    pri: Arc<PageRecoveryIndex>,
    backups: Arc<BackupStore>,
    maintainer: Arc<PriMaintainer>,
    spr: Option<Arc<SinglePageRecovery>>,
    archive: Option<Arc<ArchiveStore>>,
    archiver: Option<LogArchiver>,
    tree: Arc<FosterBTree>,
    last_full_backup: Mutex<Option<(PageId, Lsn)>>,
    scrubber: Option<Arc<Scrubber>>,
    scrub_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    governor: Arc<IoGovernor>,
    prefetcher: Option<Arc<Prefetcher>>,
    prefetch_thread: Mutex<Option<PrefetchThread>>,
    obs: Arc<Obs>,
}

/// Handle of the running prefetch-poll thread plus its private stop
/// flag (the prefetcher itself is stateless about threading).
struct PrefetchThread {
    handle: std::thread::JoinHandle<()>,
    stop: Arc<std::sync::atomic::AtomicBool>,
}

/// Adapts the B-tree allocator's high-water mark as the scrubber's scan
/// extent: the sweep covers exactly the pages ever allocated, so
/// never-formatted (all-zero) tail pages don't read as corrupt.
struct AllocExtent(Arc<BumpAllocator>);

impl ScanExtent for AllocExtent {
    fn allocated_pages(&self) -> u64 {
        self.0.high_water()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("pages", &self.config.data_pages)
            .field("spf", &self.config.single_page_recovery)
            .finish()
    }
}

const ROOT: PageId = PageId(0);

/// Cheap clones of every statistics source, detached from the façade so
/// the black-box arm (stored inside [`Obs`]) can snapshot at panic time.
/// Holds `Obs` weakly — the arm must not keep its own owner alive.
struct MetricsSources {
    pool: BufferPool,
    log: LogManager,
    txn: TxnManager,
    tree: Arc<FosterBTree>,
    spr: Option<Arc<SinglePageRecovery>>,
    pri: Arc<PageRecoveryIndex>,
    backups: Arc<BackupStore>,
    maintainer: Arc<PriMaintainer>,
    device: Device,
    mirror: Option<Device>,
    archive: Option<Arc<ArchiveStore>>,
    scrubber: Option<Arc<Scrubber>>,
    prefetcher: Option<Arc<Prefetcher>>,
    governor: Arc<IoGovernor>,
    obs: std::sync::Weak<Obs>,
}

impl MetricsSources {
    /// Flattens every subsystem's statistics into one hierarchical
    /// metrics snapshot with JSON and Prometheus-text exposition.
    fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.add("pool", &self.pool.stats());
        snap.add("wal", &self.log.stats());
        snap.add("txn", &self.txn.stats());
        snap.add("tree", &self.tree.stats());
        snap.add(
            "spf",
            &self.spr.as_ref().map(|s| s.stats()).unwrap_or_default(),
        );
        snap.add("pri", &self.pri.stats());
        snap.add("backups", &self.backups.stats());
        snap.add("maintainer", &self.maintainer.stats());
        snap.add("device", &self.device.stats());
        if let Some(m) = &self.mirror {
            snap.add("mirror_device", &m.stats());
        }
        snap.add("backup_device", &self.backups.device().stats());
        snap.add(
            "archive",
            &self.archive.as_ref().map(|a| a.stats()).unwrap_or_default(),
        );
        snap.add(
            "scrub",
            &self
                .scrubber
                .as_ref()
                .map(|s| s.stats())
                .unwrap_or_default(),
        );
        snap.add(
            "prefetch",
            &self
                .prefetcher
                .as_ref()
                .map(|p| p.stats())
                .unwrap_or_default(),
        );
        snap.add("governor", &self.governor.stats());
        if let Some(obs) = self.obs.upgrade() {
            snap.add("latency", obs.spans());
            snap.add("trace", &obs.tracer().stats());
        }
        snap
    }
}

/// Everything [`Database::assemble`] needs that differs between the
/// in-memory, fresh-directory, and reopened-directory constructors.
struct Parts {
    config: DatabaseConfig,
    clock: Arc<SimClock>,
    device: Device,
    mirror: Option<Device>,
    backups: Arc<BackupStore>,
    log: LogManager,
    archive: Option<Arc<ArchiveStore>>,
    path: Option<PathBuf>,
}

impl Database {
    /// Creates a fresh in-memory database per `config` (the simulated
    /// substrate every experiment uses).
    pub fn create(config: DatabaseConfig) -> Result<Self, DbError> {
        let clock = Arc::new(SimClock::new());
        let device = Device::Mem(MemDevice::new(
            config.page_size,
            config.data_pages,
            Arc::clone(&clock),
            config.io_cost,
            config.seed,
        ));
        let mirror = config.mirror.then(|| {
            Device::Mem(MemDevice::new(
                config.page_size,
                config.data_pages,
                Arc::clone(&clock),
                config.io_cost,
                config.seed.wrapping_add(2),
            ))
        });
        let backup_device = Device::Mem(MemDevice::new(
            config.page_size,
            BACKUP_PAGES,
            Arc::clone(&clock),
            config.io_cost,
            config.seed.wrapping_add(1),
        ));
        let log = LogManager::new(Arc::clone(&clock), config.io_cost);
        let archive = config
            .archive
            .enabled
            .then(|| Arc::new(Self::new_archive(&config, &clock)));
        Self::assemble(
            Parts {
                config,
                clock,
                device,
                mirror,
                backups: Arc::new(BackupStore::new(backup_device)),
                log,
                archive,
                path: None,
            },
            true,
        )
    }

    /// Creates a fresh **file-backed** database in directory `path`:
    /// page-aligned data (and optional mirror) files, numbered WAL
    /// segments, archive run files, and a CRC-guarded manifest. Reopen
    /// it later — after a clean close *or* an abrupt kill — with
    /// [`Database::open`].
    pub fn create_at(config: DatabaseConfig, path: &Path) -> Result<Self, DbError> {
        std::fs::create_dir_all(path).map_err(|e| Self::dir_err(path, &e))?;
        let clock = Arc::new(SimClock::new());
        let device = Self::create_file_device(
            &config,
            &clock,
            &path.join(DATA_FILE),
            config.data_pages,
            config.seed,
        )?;
        let mirror = match config.mirror {
            true => Some(Self::create_file_device(
                &config,
                &clock,
                &path.join(MIRROR_FILE),
                config.data_pages,
                config.seed.wrapping_add(2),
            )?),
            false => None,
        };
        let backup_device = Self::create_file_device(
            &config,
            &clock,
            &path.join(BACKUP_FILE),
            BACKUP_PAGES,
            config.seed.wrapping_add(1),
        )?;
        let log = LogManager::new(Arc::clone(&clock), config.io_cost);
        let files = WalFiles::create(&path.join(WAL_DIR), Lsn::FIRST.0)
            .map_err(|e| Self::dir_err(path, &e))?;
        // The sink is armed before the first tree-format records are
        // appended, so even the creation transaction is durable.
        log.set_sink(Arc::new(files));
        let archive = match config.archive.enabled {
            true => {
                let store = Self::new_archive(&config, &clock);
                store
                    .set_dir(&path.join(ARCHIVE_DIR))
                    .map_err(|e| DbError::RecoveryFailed(e.to_string()))?;
                Some(Arc::new(store))
            }
            false => None,
        };
        let db = Self::assemble(
            Parts {
                config,
                clock,
                device,
                mirror,
                backups: Arc::new(BackupStore::new(backup_device)),
                log,
                archive,
                path: Some(path.to_path_buf()),
            },
            true,
        )?;
        db.persist_manifest()?;
        Ok(db)
    }

    /// Opens an existing file-backed database directory and runs restart
    /// (system) recovery: the manifest supplies the geometry, the WAL
    /// segments are walked forward to find the durable prefix (a torn
    /// tail from a mid-write kill is detected by checksum and
    /// discarded), and ARIES-style analysis/redo/undo rebuilds the
    /// caches. Committed transactions survive; incomplete ones are
    /// rolled back.
    ///
    /// `config` supplies the *policy* knobs (pool size, verification,
    /// scrubbing, archive fanout…); the manifest overrides the
    /// *identity* fields: page size, device capacity, injector seed, and
    /// mirroring.
    pub fn open(path: &Path, mut config: DatabaseConfig) -> Result<Self, DbError> {
        let manifest =
            Manifest::load(path).map_err(|e| DbError::RecoveryFailed(format!("open: {e}")))?;
        // Keep the previous incarnation's black box (clean shutdown or
        // crash forensics) out of this run's way: rotate it aside before
        // the engine arms a fresh one. Best-effort — a read-only rename
        // failure must not block recovery.
        let _ = Obs::rotate_blackbox(path);
        config.page_size = manifest.page_size;
        config.data_pages = manifest.data_pages;
        config.seed = manifest.seed;
        config.mirror = manifest.mirror;

        let clock = Arc::new(SimClock::new());
        let device = Self::open_file_device(&config, &clock, &path.join(DATA_FILE), config.seed)?;
        let mirror = match config.mirror {
            true => Some(Self::open_file_device(
                &config,
                &clock,
                &path.join(MIRROR_FILE),
                config.seed.wrapping_add(2),
            )?),
            false => None,
        };
        let backup_device = Self::open_file_device(
            &config,
            &clock,
            &path.join(BACKUP_FILE),
            config.seed.wrapping_add(1),
        )?;

        let (files, base, bytes) =
            WalFiles::open(&path.join(WAL_DIR)).map_err(|e| Self::dir_err(path, &e))?;
        let (log, valid_end) =
            LogManager::restore(Arc::clone(&clock), config.io_cost, base, &bytes);
        // Physically drop the torn tail so a future crash + reopen never
        // sees stale pre-crash bytes where fresh records should be.
        files
            .trim_to(valid_end.0)
            .map_err(|e| Self::dir_err(path, &e))?;
        log.set_archive_watermark(manifest.archived_through);
        // Arm the sink before restart: recovery itself appends (undo
        // compensation, PRI maintenance) and forces — those must be as
        // durable as any foreground update.
        log.set_sink(Arc::new(files));

        let archive = match config.archive.enabled {
            true => Some(Arc::new(
                ArchiveStore::load(
                    Arc::clone(&clock),
                    config.io_cost,
                    MergePolicy {
                        fanout: config.archive.merge_fanout,
                    },
                    &path.join(ARCHIVE_DIR),
                )
                .map_err(|e| DbError::RecoveryFailed(e.to_string()))?,
            )),
            false => None,
        };
        if let Some(store) = &archive {
            store.note_archived_through(manifest.archived_through);
        }

        // The backup free list is volatile; resume slot allocation past
        // everything the previous incarnation could have handed out.
        let backup_start = backup_device.capacity();
        let backups = Arc::new(BackupStore::with_start_slot(backup_device, backup_start));

        let db = Self::assemble(
            Parts {
                config,
                clock,
                device,
                mirror,
                backups,
                log,
                archive,
                path: Some(path.to_path_buf()),
            },
            false,
        )?;
        // Restart's log analysis re-discovers allocated pages, but the
        // manifest's high-water mark is the durable backstop (pages
        // formatted before the last truncation have no log records
        // left).
        if manifest.alloc_high_water > 0 {
            db.alloc
                .note_allocated(PageId(manifest.alloc_high_water - 1));
        }
        *db.last_full_backup.lock() = manifest
            .last_full_backup
            .map(|(slot, lsn)| (PageId(slot), lsn));
        db.restart()?;
        Ok(db)
    }

    /// Cleanly shuts a file-backed database down: checkpoint, flush,
    /// sync every device, persist the manifest. Reopening after `close`
    /// finds an empty redo/undo workload. (Dropping without `close` is
    /// crash-equivalent — still recoverable, just through restart
    /// recovery.)
    pub fn close(self) -> Result<(), DbError> {
        self.stop_scrubber();
        self.stop_prefetcher();
        self.checkpoint()?;
        self.pool
            .flush_all()
            .map_err(|e| self.escalate(e.to_string()))?;
        self.device
            .sync()
            .map_err(|e| self.escalate(e.to_string()))?;
        if let Some(m) = &self.mirror {
            m.sync().map_err(|e| self.escalate(e.to_string()))?;
        }
        self.backups
            .device()
            .sync()
            .map_err(|e| self.escalate(e.to_string()))?;
        self.persist_manifest()?;
        // The shutdown black box: the same capture a panic would take,
        // labelled clean — so "was the last run healthy?" is answerable
        // from the directory alone.
        self.obs.write_blackbox("clean shutdown");
        Ok(())
    }

    fn new_archive(config: &DatabaseConfig, clock: &Arc<SimClock>) -> ArchiveStore {
        ArchiveStore::new(
            Arc::clone(clock),
            config.io_cost,
            MergePolicy {
                fanout: config.archive.merge_fanout,
            },
        )
    }

    fn create_file_device(
        config: &DatabaseConfig,
        clock: &Arc<SimClock>,
        path: &Path,
        pages: u64,
        seed: u64,
    ) -> Result<Device, DbError> {
        let dev = FileDevice::create(
            path,
            config.page_size,
            pages,
            Arc::clone(clock),
            config.io_cost,
            seed,
        )
        .map_err(|e| DbError::RecoveryFailed(format!("create {}: {e}", path.display())))?;
        dev.set_wall_clock(config.wall_clock_io);
        Ok(Device::File(dev))
    }

    fn open_file_device(
        config: &DatabaseConfig,
        clock: &Arc<SimClock>,
        path: &Path,
        seed: u64,
    ) -> Result<Device, DbError> {
        let dev = FileDevice::open(
            path,
            config.page_size,
            Arc::clone(clock),
            config.io_cost,
            seed,
        )
        .map_err(|e| DbError::RecoveryFailed(format!("open {}: {e}", path.display())))?;
        dev.set_wall_clock(config.wall_clock_io);
        Ok(Device::File(dev))
    }

    fn dir_err(path: &Path, e: &dyn std::fmt::Display) -> DbError {
        DbError::RecoveryFailed(format!("database directory {}: {e}", path.display()))
    }

    /// Shared constructor: wires the substrate together. With `fresh`
    /// the B-tree root is formatted (and logged); otherwise the tree is
    /// merely re-attached and the caller runs restart recovery.
    fn assemble(parts: Parts, fresh: bool) -> Result<Self, DbError> {
        let Parts {
            config,
            clock,
            device,
            mirror,
            backups,
            log,
            archive,
            path,
        } = parts;
        // Mirrored writes are synchronous (Section 5.2.2): the pool
        // writes through a pair that duplicates every write and sync
        // onto the mirror device, while reads stay on the primary.
        let pool_device: Arc<dyn StorageDevice> = match &mirror {
            Some(m) => Arc::new(MirrorPair::new(device.clone(), m.clone())),
            None => Arc::new(device.clone()),
        };
        let pool = BufferPool::new(
            BufferPoolConfig {
                frames: config.pool_frames,
            },
            pool_device,
            log.clone(),
        );
        // One observability handle per engine, attached to every
        // subsystem before the first operation (tree formatting below is
        // already traced). Attaching is unconditional; `config.obs`
        // gates the per-event hot path.
        let obs = Arc::new(Obs::new(Arc::clone(&clock), config.obs));
        obs.set_trace_sampling(config.trace_sample_every);
        log.attach_obs(Arc::clone(&obs));
        pool.attach_obs(Arc::clone(&obs));
        let txn = TxnManager::new(log.clone());
        txn.attach_obs(Arc::clone(&obs));
        let alloc = Arc::new(BumpAllocator::new(0, config.data_pages));
        let pri = Arc::new(PageRecoveryIndex::new());
        let maintainer = Arc::new(PriMaintainer::new(
            Arc::clone(&pri),
            log.clone(),
            Arc::clone(&backups),
            config.backup_policy,
        ));

        let archiver = archive
            .as_ref()
            .map(|store| LogArchiver::new(log.clone(), Arc::clone(store)));

        let spr = if config.single_page_recovery {
            pool.set_validator(Arc::clone(&maintainer) as _);
            pool.set_observer(Arc::clone(&maintainer) as _);
            let mut spr = SinglePageRecovery::new(
                Arc::clone(&pri),
                log.clone(),
                Arc::clone(&backups),
                device.clone(),
            );
            if let Some(store) = &archive {
                spr = spr.with_archive(Arc::clone(store));
            }
            if let Some(m) = &mirror {
                spr = spr.with_mirror(m.clone());
            }
            let spr = Arc::new(spr);
            spr.attach_obs(Arc::clone(&obs));
            pool.set_recoverer(Arc::clone(&spr) as _);
            Some(spr)
        } else {
            None
        };

        // One background-I/O budget for scrubber and prefetcher alike,
        // derived from the scrub pacing knobs (the pre-governor rate).
        // The bucket starts with one burst: that is what lets the
        // prefetcher do bounded work even in configurations whose
        // devices charge no simulated time (the free cost model), where
        // rate-based refill alone would never accrue budget.
        let governor = Arc::new(IoGovernor::new(
            GovernorConfig::from_scrub(config.scrub.pages_per_tick, config.scrub.tick_idle),
            Arc::clone(&clock),
        ));
        governor.attach_obs(Arc::clone(&obs));

        let scrubber = config.scrub.enabled.then(|| {
            let s = Arc::new(Scrubber::new(
                config.scrub,
                config.single_device_node,
                device.clone(),
                pool.clone(),
                Arc::clone(&pri),
                spr.clone().map(|s| s as _),
                Arc::new(AllocExtent(Arc::clone(&alloc))),
            ));
            s.set_governor(Arc::clone(&governor));
            s.attach_obs(Arc::clone(&obs));
            s
        });

        let prefetcher = config.prefetch.enabled.then(|| {
            let p = Arc::new(Prefetcher::new(
                config.prefetch,
                pool.clone(),
                Arc::clone(&governor),
                config.data_pages,
            ));
            pool.set_access_observer(Arc::clone(&p) as Arc<dyn AccessObserver>);
            p
        });

        let tree = if fresh {
            let root = alloc.allocate().expect("device has capacity");
            debug_assert_eq!(root, ROOT);
            let tree = FosterBTree::create(
                pool.clone(),
                txn.clone(),
                Arc::clone(&alloc) as Arc<dyn PageAllocator>,
                root,
                config.page_size,
                config.verify_mode,
            )
            .map_err(DbError::Tree)?;
            log.force();
            tree
        } else {
            FosterBTree::open(
                pool.clone(),
                txn.clone(),
                Arc::clone(&alloc) as Arc<dyn PageAllocator>,
                ROOT,
                config.page_size,
                config.verify_mode,
            )
        };
        tree.attach_obs(Arc::clone(&obs));
        let tree = Arc::new(tree);

        let db = Self {
            config,
            clock,
            device,
            mirror,
            path,
            log,
            pool,
            txn,
            locks: LockTable::new(),
            alloc,
            pri,
            backups,
            maintainer,
            spr,
            archive,
            archiver,
            tree,
            last_full_backup: Mutex::new(None),
            scrubber,
            scrub_thread: Mutex::new(None),
            governor,
            prefetcher,
            prefetch_thread: Mutex::new(None),
            obs,
        };
        // File-backed engines arm black-box capture: a panic (with the
        // hook installed) or a clean close persists the flight recorder,
        // open trace rings, and a metrics snapshot next to the data. The
        // closure holds its own subsystem handles — weakly for `Obs`, so
        // the arm stored inside `Obs` never keeps it alive.
        if let Some(dir) = db.path.clone() {
            let sources = db.metrics_sources();
            db.obs
                .arm_blackbox(dir, Box::new(move || sources.snapshot().to_json()));
        }
        Ok(db)
    }

    /// Writes the manifest durably (create–rename–fsync). A no-op for
    /// in-memory databases.
    fn persist_manifest(&self) -> Result<(), DbError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let manifest = Manifest {
            page_size: self.config.page_size,
            data_pages: self.config.data_pages,
            seed: self.config.seed,
            mirror: self.mirror.is_some(),
            archived_through: self.log.archive_watermark(),
            alloc_high_water: self.alloc.high_water(),
            last_full_backup: self
                .last_full_backup
                .lock()
                .map(|(slot, lsn)| (slot.0, lsn)),
        };
        manifest
            .save(path)
            .map_err(|e| DbError::RecoveryFailed(format!("manifest save failed: {e}")))
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begins a user transaction.
    pub fn begin(&self) -> TxId {
        self.txn.begin(TxKind::User)
    }

    /// Commits `tx` (forces the log — durability).
    pub fn commit(&self, tx: TxId) -> Result<Lsn, DbError> {
        self.commit_traced(tx, TraceCtx::NONE)
    }

    /// [`commit`](Database::commit) within a sampled trace: the commit
    /// and its log force (or group-commit wait) become child spans.
    pub fn commit_traced(&self, tx: TxId, ctx: TraceCtx) -> Result<Lsn, DbError> {
        self.locks.release_all(tx);
        Ok(self.txn.commit_traced(tx, ctx)?)
    }

    /// Rolls `tx` back through the per-transaction log chain.
    pub fn abort(&self, tx: TxId) -> Result<Lsn, DbError> {
        self.locks.release_all(tx);
        Ok(self
            .txn
            .abort(tx, &spf_btree::tree::PoolUndo::new(&self.pool))?)
    }

    fn lock_key(&self, tx: TxId, key: &[u8]) -> Result<(), DbError> {
        Ok(self.locks.lock(tx, u64::from(spf_util::crc32c(key)))?)
    }

    // ------------------------------------------------------------------
    // Key/value operations
    // ------------------------------------------------------------------

    /// Inserts or replaces `key → value`; returns the previous value.
    pub fn put(&self, tx: TxId, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        self.put_traced(tx, key, value, TraceCtx::NONE)
    }

    /// [`put`](Database::put) within a sampled trace: the descent, any
    /// buffer faults it takes, and any inline repair become child spans.
    pub fn put_traced(
        &self,
        tx: TxId,
        key: &[u8],
        value: &[u8],
        ctx: TraceCtx,
    ) -> Result<Option<Vec<u8>>, DbError> {
        self.lock_key(tx, key)?;
        self.with_repair_ctx(ctx, || self.tree.upsert_traced(tx, key, value, ctx))
    }

    /// Inserts `key → value`; duplicate keys are an error.
    pub fn insert(&self, tx: TxId, key: &[u8], value: &[u8]) -> Result<(), DbError> {
        self.lock_key(tx, key)?;
        self.with_repair(|| self.tree.insert(tx, key, value))
    }

    /// Deletes `key`, returning its value.
    pub fn delete(&self, tx: TxId, key: &[u8]) -> Result<Vec<u8>, DbError> {
        self.lock_key(tx, key)?;
        self.with_repair(|| self.tree.delete(tx, key))
    }

    /// Looks up `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        self.with_repair(|| self.tree.get(key))
    }

    /// Range scan: up to `limit` live records with key ≥ `start`.
    pub fn scan(&self, start: &[u8], limit: usize) -> Result<KvPairs, DbError> {
        self.with_repair(|| self.tree.scan(start, limit))
    }

    /// Convenience: single-op transaction around `put`.
    ///
    /// Safe to call from many threads over one shared `&Database`: the
    /// key lock serializes writers per key, the tree's latch-crabbed
    /// descent handles concurrent restructures, and the WAL's
    /// reservation append keeps LSNs dense under concurrent commits
    /// (experiment e18 drives exactly this path from N threads).
    pub fn put_auto(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        let _span = self.obs.span(Span::PutAuto);
        // The causal-tracing entry point: one in `trace_sample_every`
        // calls roots a trace tree here, and the context rides by value
        // through descent, buffer faults, commit, and the WAL force.
        let ctx = self.obs.sample_trace();
        let tspan = if ctx.sampled() {
            self.obs
                .trace_span(ctx, SpanKind::PutAuto, WaitClass::Run, 0)
        } else {
            ActiveSpan::inert()
        };
        let ctx = tspan.ctx();
        let tx = self.begin();
        match self.put_traced(tx, key, value, ctx) {
            Ok(old) => {
                self.commit_traced(tx, ctx)?;
                Ok(old)
            }
            Err(e) => {
                let _ = self.abort(tx);
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Detection → repair → retry
    // ------------------------------------------------------------------

    /// Runs `f`, and when it reports a detected single-page failure
    /// (fence mismatch, node corruption, or an unrecovered fetch), invokes
    /// single-page recovery on the named page and retries — the paper's
    /// "instant, focused, localized recovery" with the transaction merely
    /// delayed. Without single-page recovery configured the failure
    /// escalates per Figure 1.
    fn with_repair<T>(&self, f: impl Fn() -> Result<T, BTreeError>) -> Result<T, DbError> {
        self.with_repair_ctx(TraceCtx::NONE, f)
    }

    /// [`with_repair`](Database::with_repair) within a sampled trace: an
    /// inline single-page repair shows up as a `Repair` span classed as
    /// repair wait — the time the delayed transaction spent healing.
    fn with_repair_ctx<T>(
        &self,
        ctx: TraceCtx,
        f: impl Fn() -> Result<T, BTreeError>,
    ) -> Result<T, DbError> {
        let mut last_page = None;
        for _ in 0..8 {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let Some(page) = e.detected_page() else {
                        return Err(self.map_tree_error(e));
                    };
                    let Some(spr) = &self.spr else {
                        // Figure 8: "a traditional system offers no choice
                        // but declare a media failure."
                        return Err(self.escalate_page(
                            Some(page),
                            format!("unrepaired single-page failure at {page}: {e}"),
                        ));
                    };
                    if last_page == Some(page) {
                        // Recovery did not clear the symptom; escalate
                        // rather than loop.
                        return Err(self.escalate_page(
                            Some(page),
                            format!("single-page recovery of {page} did not resolve: {e}"),
                        ));
                    }
                    last_page = Some(page);
                    self.pool.discard_page(page);
                    self.obs.emit(EventKind::RepairAttempt, page.0, 0);
                    let _rspan = if ctx.sampled() {
                        self.obs
                            .trace_span(ctx, SpanKind::Repair, WaitClass::RepairWait, page.0)
                    } else {
                        ActiveSpan::inert()
                    };
                    match spr.recover_page(page) {
                        Ok(image) => {
                            self.obs.emit(EventKind::RepairOk, page.0, 0);
                            let lsn = Lsn(image.page_lsn());
                            let _ = self.pool.put_new(image, lsn);
                        }
                        Err(reason) => {
                            self.obs.emit(EventKind::RepairFailed, page.0, 0);
                            return Err(self.escalate_page(Some(page), reason));
                        }
                    }
                }
            }
        }
        Err(self.escalate("repeated single-page failures".to_string()))
    }

    fn map_tree_error(&self, e: BTreeError) -> DbError {
        match e {
            BTreeError::Fetch(FetchError::MediaFailure { reason, .. }) => self.escalate(reason),
            other => DbError::Tree(other),
        }
    }

    /// Applies Figure 1: a failure the engine cannot contain becomes a
    /// media failure, and on a single-device node a system failure.
    fn escalate(&self, reason: String) -> DbError {
        self.escalate_page(None, reason)
    }

    /// [`escalate`](Database::escalate) with the failed page identified
    /// (when known), so the repair audit ledger attributes the record.
    /// Every escalation captures the flight-recorder window that led up
    /// to it — the forensic dump the paper's Figure-1 hop deserves.
    fn escalate_page(&self, page: Option<PageId>, reason: String) -> DbError {
        let class = if self.config.single_device_node {
            FailureClass::System
        } else {
            FailureClass::Media
        };
        let code = match class {
            FailureClass::System => spf_obs::failure_class::SYSTEM,
            _ => spf_obs::failure_class::MEDIA,
        };
        let page_id = page.map_or(u64::MAX, |p| p.0);
        self.obs.emit(EventKind::Escalation, page_id, code);
        self.obs
            .ledger()
            .record_escalation(spf_obs::EscalationRecord {
                page_id,
                detector: "engine",
                escalated_to: spf_obs::failure_class::name(code),
                at: self.clock.now(),
                trace: self.obs.drain_trace(),
            });
        DbError::Failure { class, reason }
    }

    // ------------------------------------------------------------------
    // Checkpoints, crash, restart
    // ------------------------------------------------------------------

    /// Fuzzy checkpoint (Section 5.2.6): records the active-transaction
    /// and dirty-page tables, then writes back only the pages that were
    /// dirty when the checkpoint started.
    pub fn checkpoint(&self) -> Result<Lsn, DbError> {
        let active_txns = self.txn.active_txns();
        let dirty_pages = self.pool.dirty_pages();
        let begin = self.log.append(&LogRecord {
            tx_id: TxId::NONE,
            prev_tx_lsn: Lsn::NULL,
            page_id: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            payload: LogPayload::CheckpointBegin {
                active_txns: active_txns.clone(),
                dirty_pages: dirty_pages.clone(),
            },
        });
        let ids: Vec<PageId> = dirty_pages.iter().map(|(id, _)| *id).collect();
        self.pool
            .flush_pages(&ids)
            .map_err(|e| self.escalate(e.to_string()))?;
        self.log.append(&LogRecord {
            tx_id: TxId::NONE,
            prev_tx_lsn: Lsn::NULL,
            page_id: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            payload: LogPayload::CheckpointEnd,
        });
        self.log.force();
        Ok(begin)
    }

    /// Simulates a system failure: the buffer pool and the unforced log
    /// tail vanish; locks and the active-transaction table are volatile.
    /// Call [`restart`](Database::restart) to recover. A running
    /// background scrubber is a server thread and "dies in the crash"
    /// too (it is stopped; a recovered server calls
    /// [`start_scrubber`](Database::start_scrubber) again) — it must
    /// not keep sweeping against the pre-crash page recovery index
    /// while restart rebuilds it, and its transient pins would trip the
    /// pool's discard assertions.
    pub fn crash(&self) -> Lsn {
        self.stop_scrubber();
        // The prefetch-poll thread dies in the crash too; its in-flight
        // installs would otherwise trip the discard's marker assertion.
        self.stop_prefetcher();
        self.pool.discard_all();
        self.locks.clear();
        self.maintainer.on_crash();
        self.log.crash()
    }

    /// Restart (system) recovery: analysis, redo, undo — rebuilding the
    /// page recovery index and transaction table from the log.
    pub fn restart(&self) -> Result<RestartReport, DbError> {
        let mut recovery = SystemRecovery::new(self.log.clone(), self.pool.clone());
        if let Some(store) = &self.archive {
            recovery = recovery.with_archive(Arc::clone(store));
        }
        let alloc = Arc::clone(&self.alloc);
        let report = recovery
            .run(&self.pri, &move |p| alloc.note_allocated(p))
            .map_err(DbError::RecoveryFailed)?;
        self.txn.reset_after_crash(report.max_tx_seen);
        if !self.config.single_page_recovery {
            // A traditional engine has no PRI at all.
            self.pri.clear();
        }
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Backups and media recovery
    // ------------------------------------------------------------------

    /// Takes a full database backup (after a checkpoint + flush, so the
    /// backup is consistent), registering it as one compressed range in
    /// the page recovery index.
    pub fn take_full_backup(&self) -> Result<Lsn, DbError> {
        self.checkpoint()?;
        self.pool
            .flush_all()
            .map_err(|e| self.escalate(e.to_string()))?;
        let first = self
            .backups
            .take_full_backup(&self.device, self.config.data_pages)
            .map_err(|e| self.escalate(e.to_string()))?;
        let horizon = self.log.force();
        let backup = BackupRef::FullBackup {
            first_slot: first.0,
            pages: self.config.data_pages,
        };
        self.log.append(&LogRecord {
            tx_id: TxId::NONE,
            prev_tx_lsn: Lsn::NULL,
            page_id: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            payload: LogPayload::BackupTaken {
                backup,
                page_lsn: horizon,
            },
        });
        self.log.force();
        if self.config.single_page_recovery {
            self.pri
                .set_backup_range(PageId(0), PageId(self.config.data_pages), backup, horizon);
        }
        *self.last_full_backup.lock() = Some((first, horizon));
        // A file-backed database records the backup in its manifest so a
        // reopened process can still media-recover from it.
        self.persist_manifest()?;
        Ok(horizon)
    }

    /// Full media recovery: restores the last full backup onto the
    /// device, replays the log, and runs restart recovery. This is the
    /// *traditional* answer to a failed page — and the escalation target
    /// when single-page recovery is absent.
    pub fn media_recover(&self) -> Result<(MediaReport, RestartReport), DbError> {
        let (first, horizon) = self
            .last_full_backup
            .lock()
            .ok_or_else(|| DbError::RecoveryFailed("no full backup exists".to_string()))?;
        // A media failure takes the background scrubber and prefetcher
        // down with it (their transient pins and in-flight markers would
        // trip the discard below).
        self.stop_scrubber();
        self.stop_prefetcher();
        self.pool.discard_all();
        self.locks.clear();
        let mut media = MediaRecovery::new(self.log.clone());
        if let Some(store) = &self.archive {
            media = media.with_archive(Arc::clone(store));
        }
        let report = media
            .restore_device(
                &self.device,
                &self.backups,
                first,
                self.config.data_pages,
                horizon,
            )
            .map_err(DbError::RecoveryFailed)?;
        let restart = self.restart()?;
        Ok((report, restart))
    }

    /// Media recovery from the synchronous mirror (Section 5.2.2's
    /// backup-page source scaled up to the whole device): every
    /// verifiable mirror page is copied onto the primary, unverifiable
    /// ones are rebuilt from archive + WAL history, and restart recovery
    /// then replays the tail. Unlike [`media_recover`]
    /// (`Database::media_recover`) this needs no full backup — the
    /// mirror *is* the backup.
    pub fn media_recover_from_mirror(&self) -> Result<(MediaReport, RestartReport), DbError> {
        let mirror = self
            .mirror
            .as_ref()
            .ok_or_else(|| DbError::RecoveryFailed("no mirror is configured".to_string()))?;
        self.stop_scrubber();
        self.stop_prefetcher();
        self.pool.discard_all();
        self.locks.clear();
        let mut media = MediaRecovery::new(self.log.clone());
        if let Some(store) = &self.archive {
            media = media.with_archive(Arc::clone(store));
        }
        let report = media
            .restore_from_mirror(&self.device, mirror, self.config.data_pages)
            .map_err(DbError::RecoveryFailed)?;
        let restart = self.restart()?;
        Ok((report, restart))
    }

    /// The last full backup's location and horizon, if one was taken.
    #[must_use]
    pub fn last_full_backup(&self) -> Option<(PageId, Lsn)> {
        *self.last_full_backup.lock()
    }

    // ------------------------------------------------------------------
    // Log archiving and WAL truncation
    // ------------------------------------------------------------------

    /// Forces the log and drains the durable prefix into the log
    /// archive: one new per-page-sorted, indexed run, and an advanced
    /// archive watermark. Errors if archiving is disabled.
    pub fn archive_now(&self) -> Result<ArchiveReport, DbError> {
        let archiver = self
            .archiver
            .as_ref()
            .ok_or_else(|| DbError::RecoveryFailed("log archiving is disabled".to_string()))?;
        self.log.force();
        archiver
            .archive_up_to_durable()
            .map_err(|e| DbError::RecoveryFailed(e.to_string()))
    }

    /// The highest LSN up to which the WAL may safely be truncated right
    /// now: the minimum of
    ///
    /// * the **archive watermark** — everything dropped must be in the
    ///   archive for page-history replay;
    /// * the **last durable checkpoint** — restart analysis starts from
    ///   the truncation point, so the checkpoint must survive (null, and
    ///   therefore "nothing", until a checkpoint has been taken);
    /// * the pool's **oldest dirty-page recovery LSN** — any update not
    ///   yet on the data device may still need redo from the WAL;
    /// * the **oldest active transaction's begin LSN** — its undo chain
    ///   must stay walkable.
    #[must_use]
    pub fn safe_truncation_lsn(&self) -> Lsn {
        let watermark = self.log.archive_watermark();
        if !watermark.is_valid() {
            return Lsn::NULL;
        }
        let checkpoint = self.log.last_checkpoint();
        if !checkpoint.is_valid() {
            return Lsn::NULL;
        }
        let mut safe = watermark.min(checkpoint);
        if let Some(min_rec) = self
            .pool
            .dirty_pages()
            .iter()
            .map(|(_, rec_lsn)| *rec_lsn)
            .filter(|l| l.is_valid())
            .min()
        {
            safe = safe.min(min_rec);
        }
        if let Some(oldest_begin) = self.txn.oldest_active_begin() {
            safe = safe.min(oldest_begin);
        }
        safe
    }

    /// Truncates the WAL up to [`safe_truncation_lsn`]
    /// (`Database::safe_truncation_lsn`), reclaiming its memory. Returns
    /// the bytes dropped (0 when nothing can go yet — e.g. no checkpoint
    /// or no archive run covers the prefix).
    pub fn truncate_wal(&self) -> Result<u64, DbError> {
        let safe = self.safe_truncation_lsn();
        if !safe.is_valid() {
            return Ok(0);
        }
        // Persist the manifest (with the current archive watermark)
        // *before* dropping WAL segments: a crash in between must find
        // a manifest that still knows the dropped prefix is archived.
        self.persist_manifest()?;
        self.log
            .truncate_until(safe)
            .map_err(|e| DbError::RecoveryFailed(e.to_string()))
    }

    /// The log archive, when configured.
    #[must_use]
    pub fn archive(&self) -> Option<&Arc<ArchiveStore>> {
        self.archive.as_ref()
    }

    // ------------------------------------------------------------------
    // Online scrubbing (spf-scrub)
    // ------------------------------------------------------------------

    /// One synchronous scrub sweep over every allocated page: runs the
    /// full detector ladder, drains the repair queue, and returns what
    /// was found and fixed. Errors if scrubbing is disabled.
    pub fn scrub_now(&self) -> Result<ScrubCycleReport, DbError> {
        let scrubber = self
            .scrubber
            .as_ref()
            .ok_or_else(|| DbError::RecoveryFailed("scrubbing is disabled".to_string()))?;
        // `run_cycle` ignores the stop flag, so an explicit sweep always
        // completes — and never clears a stop the background driver may
        // be waiting on.
        Ok(scrubber.run_cycle())
    }

    /// Starts the background scrubber thread: continuous rate-limited
    /// sweep cycles concurrent with foreground transactions. Returns
    /// `false` if scrubbing is disabled or the thread is already
    /// running.
    pub fn start_scrubber(&self) -> bool {
        let Some(scrubber) = &self.scrubber else {
            return false;
        };
        let mut slot = self.scrub_thread.lock();
        if slot.is_some() {
            return false;
        }
        scrubber.clear_stop();
        let scrubber = Arc::clone(scrubber);
        *slot = Some(std::thread::spawn(move || {
            while !scrubber.stop_requested() {
                scrubber.run_cycle_interruptible();
                // Wall-clock pacing between sweeps: a small extent must
                // not turn the daemon into a hot spin stealing a core
                // from foreground transactions.
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        }));
        true
    }

    /// Stops the background scrubber and waits for it to finish its
    /// current page. Idempotent; returns whether a thread was actually
    /// stopped. The slot lock is held across signal *and* join so a
    /// concurrent [`start_scrubber`](Database::start_scrubber) cannot
    /// clear the stop flag before the old thread observes it (which
    /// would leave that thread running forever and this join hung).
    pub fn stop_scrubber(&self) -> bool {
        let mut slot = self.scrub_thread.lock();
        let Some(handle) = slot.take() else {
            return false;
        };
        if let Some(scrubber) = &self.scrubber {
            scrubber.request_stop();
        }
        let _ = handle.join();
        true
    }

    /// The scrubber, when configured (benches and experiments reach its
    /// statistics and escalation report through this).
    #[must_use]
    pub fn scrubber(&self) -> Option<&Arc<Scrubber>> {
        self.scrubber.as_ref()
    }

    // ------------------------------------------------------------------
    // Predictive prefetching (spf-prefetch)
    // ------------------------------------------------------------------

    /// Starts the background prefetch-poll thread: drains the
    /// prediction queue continuously, drawing I/O budget from the
    /// shared governor. Returns `false` if prefetching is disabled or
    /// the thread is already running.
    pub fn start_prefetcher(&self) -> bool {
        use std::sync::atomic::{AtomicBool, Ordering};
        let Some(prefetcher) = &self.prefetcher else {
            return false;
        };
        let mut slot = self.prefetch_thread.lock();
        if slot.is_some() {
            return false;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let prefetcher = Arc::clone(prefetcher);
        let handle = std::thread::spawn(move || {
            while !thread_stop.load(Ordering::Acquire) {
                if prefetcher.poll() == 0 {
                    // Nothing queued (or no budget): wall-clock pause so
                    // an idle prefetcher is not a hot spin.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
        });
        *slot = Some(PrefetchThread { handle, stop });
        true
    }

    /// Stops the background prefetch-poll thread and waits for its
    /// current issue to finish (so no in-flight prefetch marker
    /// outlives this call). Idempotent; returns whether a thread was
    /// actually stopped. As with the scrubber, the slot lock is held
    /// across signal and join so a concurrent
    /// [`start_prefetcher`](Database::start_prefetcher) cannot race.
    pub fn stop_prefetcher(&self) -> bool {
        let mut slot = self.prefetch_thread.lock();
        let Some(thread) = slot.take() else {
            return false;
        };
        thread
            .stop
            .store(true, std::sync::atomic::Ordering::Release);
        let _ = thread.handle.join();
        true
    }

    /// The prefetcher, when configured (experiments drive
    /// [`Prefetcher::poll`] directly for deterministic single-step
    /// control).
    #[must_use]
    pub fn prefetcher(&self) -> Option<&Arc<Prefetcher>> {
        self.prefetcher.as_ref()
    }

    /// The background-I/O governor shared by scrubber and prefetcher.
    #[must_use]
    pub fn governor(&self) -> &Arc<IoGovernor> {
        &self.governor
    }

    // ------------------------------------------------------------------
    // Failure injection and inspection (experiment surface)
    // ------------------------------------------------------------------

    /// Arms `fault` on `page` of the data device.
    pub fn inject_fault(&self, page: PageId, fault: FaultSpec) {
        self.device.inject_fault(page, fault);
    }

    /// Fails the entire data device (a media failure).
    pub fn fail_device(&self) {
        self.device.injector().fail_device();
    }

    /// Flushes and drops every cached page, so the next access re-reads
    /// the device (and re-runs Figure 8's verification). A running
    /// background scrubber is paused for the discard (its transient
    /// pins would trip the pool's assertions) and resumed after.
    pub fn drop_cache(&self) {
        let was_running = self.stop_scrubber();
        let prefetch_was_running = self.stop_prefetcher();
        let _ = self.pool.flush_all();
        self.pool.discard_all();
        if was_running {
            self.start_scrubber();
        }
        if prefetch_was_running {
            self.start_prefetcher();
        }
    }

    /// Relocates `page` to a fresh device location and retires the old
    /// one on the bad-block list — the paper's post-recovery move
    /// (§5.2.3: "the page can be moved to a new location. The old, failed
    /// location can be … registered in an appropriate data structure to
    /// prevent future use"). Returns the new page id.
    pub fn relocate_page(&self, page: PageId) -> Result<PageId, DbError> {
        self.pri.remove(page); // the old location's history ends here
        let new_pid = self.tree.migrate_page(page, true).map_err(DbError::Tree)?;
        Ok(new_pid)
    }

    /// Some allocated B-tree leaf page, for targeted fault injection.
    #[must_use]
    pub fn any_leaf_page(&self) -> Option<PageId> {
        self.leaf_pages().into_iter().last()
    }

    /// Every allocated B-tree leaf page (by raw device inspection).
    #[must_use]
    pub fn leaf_pages(&self) -> Vec<PageId> {
        let _ = self.pool.flush_all();
        let mut out = Vec::new();
        for i in 0..self.alloc.high_water() {
            let image = Page::from_bytes(self.device.raw_image(PageId(i)));
            if image.page_type() == Some(PageType::BTreeLeaf) && image.page_id() == PageId(i) {
                out.push(PageId(i));
            }
        }
        out
    }

    /// Full structural verification of the tree (offline check).
    pub fn verify_tree(&self) -> Result<Vec<spf_btree::Violation>, DbError> {
        self.tree.verify_full().map_err(DbError::Tree)
    }

    /// Every live record (ordered) — used by tests to compare engines.
    pub fn dump_all(&self) -> Result<KvPairs, DbError> {
        self.with_repair(|| self.tree.collect_all())
    }

    // ------------------------------------------------------------------
    // Substrate accessors (benches, experiments)
    // ------------------------------------------------------------------

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// The shared simulated clock.
    #[must_use]
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The data device.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The synchronous mirror device, when configured.
    #[must_use]
    pub fn mirror(&self) -> Option<&Device> {
        self.mirror.as_ref()
    }

    /// The database directory, for file-backed databases.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The write-ahead log.
    #[must_use]
    pub fn log(&self) -> &LogManager {
        &self.log
    }

    /// The buffer pool.
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The transaction manager.
    #[must_use]
    pub fn txn_manager(&self) -> &TxnManager {
        &self.txn
    }

    /// The page recovery index.
    #[must_use]
    pub fn pri(&self) -> &Arc<PageRecoveryIndex> {
        &self.pri
    }

    /// The backup store.
    #[must_use]
    pub fn backups(&self) -> &Arc<BackupStore> {
        &self.backups
    }

    /// The single-page recoverer, when configured.
    #[must_use]
    pub fn single_page_recovery(&self) -> Option<&Arc<SinglePageRecovery>> {
        self.spr.as_ref()
    }

    /// The Foster B-tree.
    #[must_use]
    pub fn tree(&self) -> &FosterBTree {
        &self.tree
    }

    /// Aggregated statistics snapshot. Every sub-struct is carried
    /// whole (no hand-copied fields), so a counter added to any
    /// subsystem's stats can never silently drop out of `DbStats`.
    #[must_use]
    pub fn stats(&self) -> DbStats {
        DbStats {
            pool: self.pool.stats(),
            log: self.log.stats(),
            txn: self.txn.stats(),
            tree: self.tree.stats(),
            spf: self.spr.as_ref().map(|s| s.stats()).unwrap_or_default(),
            pri: self.pri.stats(),
            backups: self.backups.stats(),
            device: self.device.stats(),
            backup_device: self.backups.device().stats(),
            archive: self.archive.as_ref().map(|a| a.stats()).unwrap_or_default(),
            scrub: self
                .scrubber
                .as_ref()
                .map(|s| s.stats())
                .unwrap_or_default(),
            maintainer: self.maintainer.stats(),
            prefetch: self
                .prefetcher
                .as_ref()
                .map(|p| p.stats())
                .unwrap_or_default(),
            governor: self.governor.stats(),
            trace: self.obs.tracer().stats(),
            now: self.clock.now(),
        }
    }

    /// Flattens every subsystem's statistics into one hierarchical
    /// metrics snapshot with JSON ([`MetricsSnapshot::to_json`]) and
    /// Prometheus-text ([`MetricsSnapshot::to_prometheus`]) exposition.
    /// Includes the hot-path span histograms (`latency` group); works
    /// whether or not event tracing is enabled.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics_sources().snapshot()
    }

    /// The detached snapshot builder: cheap handles to every subsystem,
    /// good for as long as the engine lives. This is what the black-box
    /// arm captures, so a panic snapshot and `metrics_snapshot` can
    /// never drift apart.
    fn metrics_sources(&self) -> MetricsSources {
        MetricsSources {
            pool: self.pool.clone(),
            log: self.log.clone(),
            txn: self.txn.clone(),
            tree: Arc::clone(&self.tree),
            spr: self.spr.clone(),
            pri: Arc::clone(&self.pri),
            backups: Arc::clone(&self.backups),
            maintainer: Arc::clone(&self.maintainer),
            device: self.device.clone(),
            mirror: self.mirror.clone(),
            archive: self.archive.clone(),
            scrubber: self.scrubber.clone(),
            prefetcher: self.prefetcher.clone(),
            governor: Arc::clone(&self.governor),
            obs: Arc::downgrade(&self.obs),
        }
    }

    /// Drains every completed trace ring and stitches the spans into
    /// trace trees (plus cross-trace orphans such as another operation's
    /// group-commit leader force).
    #[must_use]
    pub fn drain_trace_trees(&self) -> Stitched {
        self.obs.tracer().drain_trees()
    }

    /// Drains the trace rings and renders every stitched trace as Chrome
    /// tracing JSON (load it at `chrome://tracing` or in Perfetto).
    #[must_use]
    pub fn export_traces(&self) -> String {
        spf_obs::to_chrome_json(&self.drain_trace_trees())
    }

    /// The engine's observability handle: flight-recorder drain, runtime
    /// tracing toggle, span histograms, and the repair audit ledger.
    #[must_use]
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }
}

impl Drop for Database {
    /// The background scrubber and prefetcher threads borrow the
    /// engine's shared substrate; stop them before the façade goes away.
    fn drop(&mut self) {
        self.stop_scrubber();
        self.stop_prefetcher();
    }
}
