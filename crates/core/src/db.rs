//! The [`Database`] façade: substrate wiring, transactional KV API,
//! failure injection, and the four recovery paths.

use std::sync::Arc;

use parking_lot::Mutex;

use spf_archive::{ArchiveReport, ArchiveStore, LogArchiver, MergePolicy};
use spf_btree::{BTreeError, BumpAllocator, FosterBTree, KvPairs, PageAllocator};
use spf_buffer::{BufferPool, BufferPoolConfig, FetchError};
use spf_recovery::{
    BackupStore, FailureClass, MediaRecovery, MediaReport, PageRecoveryIndex, PriMaintainer,
    RestartReport, SinglePageRecovery, SystemRecovery,
};
use spf_scrub::{ScanExtent, ScrubCycleReport, Scrubber};
use spf_storage::{FaultSpec, MemDevice, Page, PageId, PageType, StorageDevice};
use spf_txn::{LockTable, TxKind, TxnManager};
use spf_util::SimClock;
use spf_wal::{BackupRef, LogManager, LogPayload, LogRecord, Lsn, TxId};

use crate::config::DatabaseConfig;
use crate::error::DbError;
use crate::stats::DbStats;

/// The database engine. All substrate handles are shared; `Database`
/// itself is not `Clone` (one façade per engine).
pub struct Database {
    config: DatabaseConfig,
    clock: Arc<SimClock>,
    device: MemDevice,
    log: LogManager,
    pool: BufferPool,
    txn: TxnManager,
    locks: LockTable,
    alloc: Arc<BumpAllocator>,
    pri: Arc<PageRecoveryIndex>,
    backups: Arc<BackupStore>,
    maintainer: Arc<PriMaintainer>,
    spr: Option<Arc<SinglePageRecovery>>,
    archive: Option<Arc<ArchiveStore>>,
    archiver: Option<LogArchiver>,
    tree: FosterBTree,
    last_full_backup: Mutex<Option<(PageId, Lsn)>>,
    scrubber: Option<Arc<Scrubber>>,
    scrub_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Adapts the B-tree allocator's high-water mark as the scrubber's scan
/// extent: the sweep covers exactly the pages ever allocated, so
/// never-formatted (all-zero) tail pages don't read as corrupt.
struct AllocExtent(Arc<BumpAllocator>);

impl ScanExtent for AllocExtent {
    fn allocated_pages(&self) -> u64 {
        self.0.high_water()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("pages", &self.config.data_pages)
            .field("spf", &self.config.single_page_recovery)
            .finish()
    }
}

const ROOT: PageId = PageId(0);

impl Database {
    /// Creates a fresh database per `config`.
    pub fn create(config: DatabaseConfig) -> Result<Self, DbError> {
        let clock = Arc::new(SimClock::new());
        let device = MemDevice::new(
            config.page_size,
            config.data_pages,
            Arc::clone(&clock),
            config.io_cost,
            config.seed,
        );
        let backup_device = MemDevice::new(
            config.page_size,
            256,
            Arc::clone(&clock),
            config.io_cost,
            config.seed.wrapping_add(1),
        );
        let log = LogManager::new(Arc::clone(&clock), config.io_cost);
        let pool = BufferPool::new(
            BufferPoolConfig {
                frames: config.pool_frames,
            },
            Arc::new(device.clone()),
            log.clone(),
        );
        let txn = TxnManager::new(log.clone());
        let alloc = Arc::new(BumpAllocator::new(0, config.data_pages));
        let pri = Arc::new(PageRecoveryIndex::new());
        let backups = Arc::new(BackupStore::new(backup_device));
        let maintainer = Arc::new(PriMaintainer::new(
            Arc::clone(&pri),
            log.clone(),
            Arc::clone(&backups),
            config.backup_policy,
        ));

        let archive = config.archive.enabled.then(|| {
            Arc::new(ArchiveStore::new(
                Arc::clone(&clock),
                config.io_cost,
                MergePolicy {
                    fanout: config.archive.merge_fanout,
                },
            ))
        });
        let archiver = archive
            .as_ref()
            .map(|store| LogArchiver::new(log.clone(), Arc::clone(store)));

        let spr = if config.single_page_recovery {
            pool.set_validator(Arc::clone(&maintainer) as _);
            pool.set_observer(Arc::clone(&maintainer) as _);
            let mut spr = SinglePageRecovery::new(
                Arc::clone(&pri),
                log.clone(),
                Arc::clone(&backups),
                device.clone(),
            );
            if let Some(store) = &archive {
                spr = spr.with_archive(Arc::clone(store));
            }
            let spr = Arc::new(spr);
            pool.set_recoverer(Arc::clone(&spr) as _);
            Some(spr)
        } else {
            None
        };

        let scrubber = config.scrub.enabled.then(|| {
            Arc::new(Scrubber::new(
                config.scrub,
                config.single_device_node,
                device.clone(),
                pool.clone(),
                Arc::clone(&pri),
                spr.clone().map(|s| s as _),
                Arc::new(AllocExtent(Arc::clone(&alloc))),
            ))
        });

        let root = alloc.allocate().expect("device has capacity");
        debug_assert_eq!(root, ROOT);
        let tree = FosterBTree::create(
            pool.clone(),
            txn.clone(),
            Arc::clone(&alloc) as Arc<dyn PageAllocator>,
            root,
            config.page_size,
            config.verify_mode,
        )
        .map_err(DbError::Tree)?;
        log.force();

        Ok(Self {
            config,
            clock,
            device,
            log,
            pool,
            txn,
            locks: LockTable::new(),
            alloc,
            pri,
            backups,
            maintainer,
            spr,
            archive,
            archiver,
            tree,
            last_full_backup: Mutex::new(None),
            scrubber,
            scrub_thread: Mutex::new(None),
        })
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begins a user transaction.
    pub fn begin(&self) -> TxId {
        self.txn.begin(TxKind::User)
    }

    /// Commits `tx` (forces the log — durability).
    pub fn commit(&self, tx: TxId) -> Result<Lsn, DbError> {
        self.locks.release_all(tx);
        Ok(self.txn.commit(tx)?)
    }

    /// Rolls `tx` back through the per-transaction log chain.
    pub fn abort(&self, tx: TxId) -> Result<Lsn, DbError> {
        self.locks.release_all(tx);
        Ok(self
            .txn
            .abort(tx, &spf_btree::tree::PoolUndo::new(&self.pool))?)
    }

    fn lock_key(&self, tx: TxId, key: &[u8]) -> Result<(), DbError> {
        Ok(self.locks.lock(tx, u64::from(spf_util::crc32c(key)))?)
    }

    // ------------------------------------------------------------------
    // Key/value operations
    // ------------------------------------------------------------------

    /// Inserts or replaces `key → value`; returns the previous value.
    pub fn put(&self, tx: TxId, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        self.lock_key(tx, key)?;
        self.with_repair(|| self.tree.upsert(tx, key, value))
    }

    /// Inserts `key → value`; duplicate keys are an error.
    pub fn insert(&self, tx: TxId, key: &[u8], value: &[u8]) -> Result<(), DbError> {
        self.lock_key(tx, key)?;
        self.with_repair(|| self.tree.insert(tx, key, value))
    }

    /// Deletes `key`, returning its value.
    pub fn delete(&self, tx: TxId, key: &[u8]) -> Result<Vec<u8>, DbError> {
        self.lock_key(tx, key)?;
        self.with_repair(|| self.tree.delete(tx, key))
    }

    /// Looks up `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        self.with_repair(|| self.tree.get(key))
    }

    /// Range scan: up to `limit` live records with key ≥ `start`.
    pub fn scan(&self, start: &[u8], limit: usize) -> Result<KvPairs, DbError> {
        self.with_repair(|| self.tree.scan(start, limit))
    }

    /// Convenience: single-op transaction around `put`.
    ///
    /// Safe to call from many threads over one shared `&Database`: the
    /// key lock serializes writers per key, the tree's latch-crabbed
    /// descent handles concurrent restructures, and the WAL's
    /// reservation append keeps LSNs dense under concurrent commits
    /// (experiment e18 drives exactly this path from N threads).
    pub fn put_auto(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        let tx = self.begin();
        match self.put(tx, key, value) {
            Ok(old) => {
                self.commit(tx)?;
                Ok(old)
            }
            Err(e) => {
                let _ = self.abort(tx);
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Detection → repair → retry
    // ------------------------------------------------------------------

    /// Runs `f`, and when it reports a detected single-page failure
    /// (fence mismatch, node corruption, or an unrecovered fetch), invokes
    /// single-page recovery on the named page and retries — the paper's
    /// "instant, focused, localized recovery" with the transaction merely
    /// delayed. Without single-page recovery configured the failure
    /// escalates per Figure 1.
    fn with_repair<T>(&self, f: impl Fn() -> Result<T, BTreeError>) -> Result<T, DbError> {
        let mut last_page = None;
        for _ in 0..8 {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let Some(page) = e.detected_page() else {
                        return Err(self.map_tree_error(e));
                    };
                    let Some(spr) = &self.spr else {
                        // Figure 8: "a traditional system offers no choice
                        // but declare a media failure."
                        return Err(
                            self.escalate(format!("unrepaired single-page failure at {page}: {e}"))
                        );
                    };
                    if last_page == Some(page) {
                        // Recovery did not clear the symptom; escalate
                        // rather than loop.
                        return Err(self.escalate(format!(
                            "single-page recovery of {page} did not resolve: {e}"
                        )));
                    }
                    last_page = Some(page);
                    self.pool.discard_page(page);
                    match spr.recover_page(page) {
                        Ok(image) => {
                            let lsn = Lsn(image.page_lsn());
                            let _ = self.pool.put_new(image, lsn);
                        }
                        Err(reason) => return Err(self.escalate(reason)),
                    }
                }
            }
        }
        Err(self.escalate("repeated single-page failures".to_string()))
    }

    fn map_tree_error(&self, e: BTreeError) -> DbError {
        match e {
            BTreeError::Fetch(FetchError::MediaFailure { reason, .. }) => self.escalate(reason),
            other => DbError::Tree(other),
        }
    }

    /// Applies Figure 1: a failure the engine cannot contain becomes a
    /// media failure, and on a single-device node a system failure.
    fn escalate(&self, reason: String) -> DbError {
        let class = if self.config.single_device_node {
            FailureClass::System
        } else {
            FailureClass::Media
        };
        DbError::Failure { class, reason }
    }

    // ------------------------------------------------------------------
    // Checkpoints, crash, restart
    // ------------------------------------------------------------------

    /// Fuzzy checkpoint (Section 5.2.6): records the active-transaction
    /// and dirty-page tables, then writes back only the pages that were
    /// dirty when the checkpoint started.
    pub fn checkpoint(&self) -> Result<Lsn, DbError> {
        let active_txns = self.txn.active_txns();
        let dirty_pages = self.pool.dirty_pages();
        let begin = self.log.append(&LogRecord {
            tx_id: TxId::NONE,
            prev_tx_lsn: Lsn::NULL,
            page_id: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            payload: LogPayload::CheckpointBegin {
                active_txns: active_txns.clone(),
                dirty_pages: dirty_pages.clone(),
            },
        });
        let ids: Vec<PageId> = dirty_pages.iter().map(|(id, _)| *id).collect();
        self.pool
            .flush_pages(&ids)
            .map_err(|e| self.escalate(e.to_string()))?;
        self.log.append(&LogRecord {
            tx_id: TxId::NONE,
            prev_tx_lsn: Lsn::NULL,
            page_id: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            payload: LogPayload::CheckpointEnd,
        });
        self.log.force();
        Ok(begin)
    }

    /// Simulates a system failure: the buffer pool and the unforced log
    /// tail vanish; locks and the active-transaction table are volatile.
    /// Call [`restart`](Database::restart) to recover. A running
    /// background scrubber is a server thread and "dies in the crash"
    /// too (it is stopped; a recovered server calls
    /// [`start_scrubber`](Database::start_scrubber) again) — it must
    /// not keep sweeping against the pre-crash page recovery index
    /// while restart rebuilds it, and its transient pins would trip the
    /// pool's discard assertions.
    pub fn crash(&self) -> Lsn {
        self.stop_scrubber();
        self.pool.discard_all();
        self.locks.clear();
        self.maintainer.on_crash();
        self.log.crash()
    }

    /// Restart (system) recovery: analysis, redo, undo — rebuilding the
    /// page recovery index and transaction table from the log.
    pub fn restart(&self) -> Result<RestartReport, DbError> {
        let mut recovery = SystemRecovery::new(self.log.clone(), self.pool.clone());
        if let Some(store) = &self.archive {
            recovery = recovery.with_archive(Arc::clone(store));
        }
        let alloc = Arc::clone(&self.alloc);
        let report = recovery
            .run(&self.pri, &move |p| alloc.note_allocated(p))
            .map_err(DbError::RecoveryFailed)?;
        self.txn.reset_after_crash(report.max_tx_seen);
        if !self.config.single_page_recovery {
            // A traditional engine has no PRI at all.
            self.pri.clear();
        }
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Backups and media recovery
    // ------------------------------------------------------------------

    /// Takes a full database backup (after a checkpoint + flush, so the
    /// backup is consistent), registering it as one compressed range in
    /// the page recovery index.
    pub fn take_full_backup(&self) -> Result<Lsn, DbError> {
        self.checkpoint()?;
        self.pool
            .flush_all()
            .map_err(|e| self.escalate(e.to_string()))?;
        let first = self
            .backups
            .take_full_backup(&self.device, self.config.data_pages)
            .map_err(|e| self.escalate(e.to_string()))?;
        let horizon = self.log.force();
        let backup = BackupRef::FullBackup {
            first_slot: first.0,
            pages: self.config.data_pages,
        };
        self.log.append(&LogRecord {
            tx_id: TxId::NONE,
            prev_tx_lsn: Lsn::NULL,
            page_id: PageId::INVALID,
            prev_page_lsn: Lsn::NULL,
            payload: LogPayload::BackupTaken {
                backup,
                page_lsn: horizon,
            },
        });
        self.log.force();
        if self.config.single_page_recovery {
            self.pri
                .set_backup_range(PageId(0), PageId(self.config.data_pages), backup, horizon);
        }
        *self.last_full_backup.lock() = Some((first, horizon));
        Ok(horizon)
    }

    /// Full media recovery: restores the last full backup onto the
    /// device, replays the log, and runs restart recovery. This is the
    /// *traditional* answer to a failed page — and the escalation target
    /// when single-page recovery is absent.
    pub fn media_recover(&self) -> Result<(MediaReport, RestartReport), DbError> {
        let (first, horizon) = self
            .last_full_backup
            .lock()
            .ok_or_else(|| DbError::RecoveryFailed("no full backup exists".to_string()))?;
        // A media failure takes the background scrubber down with it
        // (and its transient pins would trip the discard below).
        self.stop_scrubber();
        self.pool.discard_all();
        self.locks.clear();
        let mut media = MediaRecovery::new(self.log.clone());
        if let Some(store) = &self.archive {
            media = media.with_archive(Arc::clone(store));
        }
        let report = media
            .restore_device(
                &self.device,
                &self.backups,
                first,
                self.config.data_pages,
                horizon,
            )
            .map_err(DbError::RecoveryFailed)?;
        let restart = self.restart()?;
        Ok((report, restart))
    }

    /// The last full backup's location and horizon, if one was taken.
    #[must_use]
    pub fn last_full_backup(&self) -> Option<(PageId, Lsn)> {
        *self.last_full_backup.lock()
    }

    // ------------------------------------------------------------------
    // Log archiving and WAL truncation
    // ------------------------------------------------------------------

    /// Forces the log and drains the durable prefix into the log
    /// archive: one new per-page-sorted, indexed run, and an advanced
    /// archive watermark. Errors if archiving is disabled.
    pub fn archive_now(&self) -> Result<ArchiveReport, DbError> {
        let archiver = self
            .archiver
            .as_ref()
            .ok_or_else(|| DbError::RecoveryFailed("log archiving is disabled".to_string()))?;
        self.log.force();
        archiver
            .archive_up_to_durable()
            .map_err(|e| DbError::RecoveryFailed(e.to_string()))
    }

    /// The highest LSN up to which the WAL may safely be truncated right
    /// now: the minimum of
    ///
    /// * the **archive watermark** — everything dropped must be in the
    ///   archive for page-history replay;
    /// * the **last durable checkpoint** — restart analysis starts from
    ///   the truncation point, so the checkpoint must survive (null, and
    ///   therefore "nothing", until a checkpoint has been taken);
    /// * the pool's **oldest dirty-page recovery LSN** — any update not
    ///   yet on the data device may still need redo from the WAL;
    /// * the **oldest active transaction's begin LSN** — its undo chain
    ///   must stay walkable.
    #[must_use]
    pub fn safe_truncation_lsn(&self) -> Lsn {
        let watermark = self.log.archive_watermark();
        if !watermark.is_valid() {
            return Lsn::NULL;
        }
        let checkpoint = self.log.last_checkpoint();
        if !checkpoint.is_valid() {
            return Lsn::NULL;
        }
        let mut safe = watermark.min(checkpoint);
        if let Some(min_rec) = self
            .pool
            .dirty_pages()
            .iter()
            .map(|(_, rec_lsn)| *rec_lsn)
            .filter(|l| l.is_valid())
            .min()
        {
            safe = safe.min(min_rec);
        }
        if let Some(oldest_begin) = self.txn.oldest_active_begin() {
            safe = safe.min(oldest_begin);
        }
        safe
    }

    /// Truncates the WAL up to [`safe_truncation_lsn`]
    /// (`Database::safe_truncation_lsn`), reclaiming its memory. Returns
    /// the bytes dropped (0 when nothing can go yet — e.g. no checkpoint
    /// or no archive run covers the prefix).
    pub fn truncate_wal(&self) -> Result<u64, DbError> {
        let safe = self.safe_truncation_lsn();
        if !safe.is_valid() {
            return Ok(0);
        }
        self.log
            .truncate_until(safe)
            .map_err(|e| DbError::RecoveryFailed(e.to_string()))
    }

    /// The log archive, when configured.
    #[must_use]
    pub fn archive(&self) -> Option<&Arc<ArchiveStore>> {
        self.archive.as_ref()
    }

    // ------------------------------------------------------------------
    // Online scrubbing (spf-scrub)
    // ------------------------------------------------------------------

    /// One synchronous scrub sweep over every allocated page: runs the
    /// full detector ladder, drains the repair queue, and returns what
    /// was found and fixed. Errors if scrubbing is disabled.
    pub fn scrub_now(&self) -> Result<ScrubCycleReport, DbError> {
        let scrubber = self
            .scrubber
            .as_ref()
            .ok_or_else(|| DbError::RecoveryFailed("scrubbing is disabled".to_string()))?;
        // `run_cycle` ignores the stop flag, so an explicit sweep always
        // completes — and never clears a stop the background driver may
        // be waiting on.
        Ok(scrubber.run_cycle())
    }

    /// Starts the background scrubber thread: continuous rate-limited
    /// sweep cycles concurrent with foreground transactions. Returns
    /// `false` if scrubbing is disabled or the thread is already
    /// running.
    pub fn start_scrubber(&self) -> bool {
        let Some(scrubber) = &self.scrubber else {
            return false;
        };
        let mut slot = self.scrub_thread.lock();
        if slot.is_some() {
            return false;
        }
        scrubber.clear_stop();
        let scrubber = Arc::clone(scrubber);
        *slot = Some(std::thread::spawn(move || {
            while !scrubber.stop_requested() {
                scrubber.run_cycle_interruptible();
                // Wall-clock pacing between sweeps: a small extent must
                // not turn the daemon into a hot spin stealing a core
                // from foreground transactions.
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        }));
        true
    }

    /// Stops the background scrubber and waits for it to finish its
    /// current page. Idempotent; returns whether a thread was actually
    /// stopped. The slot lock is held across signal *and* join so a
    /// concurrent [`start_scrubber`](Database::start_scrubber) cannot
    /// clear the stop flag before the old thread observes it (which
    /// would leave that thread running forever and this join hung).
    pub fn stop_scrubber(&self) -> bool {
        let mut slot = self.scrub_thread.lock();
        let Some(handle) = slot.take() else {
            return false;
        };
        if let Some(scrubber) = &self.scrubber {
            scrubber.request_stop();
        }
        let _ = handle.join();
        true
    }

    /// The scrubber, when configured (benches and experiments reach its
    /// statistics and escalation report through this).
    #[must_use]
    pub fn scrubber(&self) -> Option<&Arc<Scrubber>> {
        self.scrubber.as_ref()
    }

    // ------------------------------------------------------------------
    // Failure injection and inspection (experiment surface)
    // ------------------------------------------------------------------

    /// Arms `fault` on `page` of the data device.
    pub fn inject_fault(&self, page: PageId, fault: FaultSpec) {
        self.device.inject_fault(page, fault);
    }

    /// Fails the entire data device (a media failure).
    pub fn fail_device(&self) {
        self.device.injector().fail_device();
    }

    /// Flushes and drops every cached page, so the next access re-reads
    /// the device (and re-runs Figure 8's verification). A running
    /// background scrubber is paused for the discard (its transient
    /// pins would trip the pool's assertions) and resumed after.
    pub fn drop_cache(&self) {
        let was_running = self.stop_scrubber();
        let _ = self.pool.flush_all();
        self.pool.discard_all();
        if was_running {
            self.start_scrubber();
        }
    }

    /// Relocates `page` to a fresh device location and retires the old
    /// one on the bad-block list — the paper's post-recovery move
    /// (§5.2.3: "the page can be moved to a new location. The old, failed
    /// location can be … registered in an appropriate data structure to
    /// prevent future use"). Returns the new page id.
    pub fn relocate_page(&self, page: PageId) -> Result<PageId, DbError> {
        self.pri.remove(page); // the old location's history ends here
        let new_pid = self.tree.migrate_page(page, true).map_err(DbError::Tree)?;
        Ok(new_pid)
    }

    /// Some allocated B-tree leaf page, for targeted fault injection.
    #[must_use]
    pub fn any_leaf_page(&self) -> Option<PageId> {
        self.leaf_pages().into_iter().last()
    }

    /// Every allocated B-tree leaf page (by raw device inspection).
    #[must_use]
    pub fn leaf_pages(&self) -> Vec<PageId> {
        let _ = self.pool.flush_all();
        let mut out = Vec::new();
        for i in 0..self.alloc.high_water() {
            let image = Page::from_bytes(self.device.raw_image(PageId(i)));
            if image.page_type() == Some(PageType::BTreeLeaf) && image.page_id() == PageId(i) {
                out.push(PageId(i));
            }
        }
        out
    }

    /// Full structural verification of the tree (offline check).
    pub fn verify_tree(&self) -> Result<Vec<spf_btree::Violation>, DbError> {
        self.tree.verify_full().map_err(DbError::Tree)
    }

    /// Every live record (ordered) — used by tests to compare engines.
    pub fn dump_all(&self) -> Result<KvPairs, DbError> {
        self.with_repair(|| self.tree.collect_all())
    }

    // ------------------------------------------------------------------
    // Substrate accessors (benches, experiments)
    // ------------------------------------------------------------------

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// The shared simulated clock.
    #[must_use]
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The data device.
    #[must_use]
    pub fn device(&self) -> &MemDevice {
        &self.device
    }

    /// The write-ahead log.
    #[must_use]
    pub fn log(&self) -> &LogManager {
        &self.log
    }

    /// The buffer pool.
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The transaction manager.
    #[must_use]
    pub fn txn_manager(&self) -> &TxnManager {
        &self.txn
    }

    /// The page recovery index.
    #[must_use]
    pub fn pri(&self) -> &Arc<PageRecoveryIndex> {
        &self.pri
    }

    /// The backup store.
    #[must_use]
    pub fn backups(&self) -> &Arc<BackupStore> {
        &self.backups
    }

    /// The single-page recoverer, when configured.
    #[must_use]
    pub fn single_page_recovery(&self) -> Option<&Arc<SinglePageRecovery>> {
        self.spr.as_ref()
    }

    /// The Foster B-tree.
    #[must_use]
    pub fn tree(&self) -> &FosterBTree {
        &self.tree
    }

    /// Aggregated statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> DbStats {
        let m = self.maintainer.stats();
        DbStats {
            pool: self.pool.stats(),
            log: self.log.stats(),
            txn: self.txn.stats(),
            tree: self.tree.stats(),
            spf: self.spr.as_ref().map(|s| s.stats()).unwrap_or_default(),
            pri: self.pri.stats(),
            backups: self.backups.stats(),
            device: self.device.stats(),
            backup_device: self.backups.device().stats(),
            archive: self.archive.as_ref().map(|a| a.stats()).unwrap_or_default(),
            scrub: self
                .scrubber
                .as_ref()
                .map(|s| s.stats())
                .unwrap_or_default(),
            pri_updates_logged: m.pri_updates_logged,
            policy_backups: m.policy_backups,
            stale_detections: m.stale_detections,
            now: self.clock.now(),
        }
    }
}

impl Drop for Database {
    /// The background scrubber thread borrows the engine's shared
    /// substrate; stop it before the façade goes away.
    fn drop(&mut self) {
        self.stop_scrubber();
    }
}
