//! Durability and mirrored-media integration tests: file-backed
//! databases surviving clean closes, abrupt in-process drops, and real
//! process kills; mirror-sourced single-page repair and media recovery;
//! and sync-fault (lost-write) detection through the scrubber.

use std::path::Path;
use std::process::Command;

use spf::{
    ArchiveConfig, CorruptionMode, Database, DatabaseConfig, DetectorClass, FaultSpec, ScrubConfig,
};
use tempdir::TempDir;

fn key(i: u64) -> Vec<u8> {
    format!("key-{i:08}").into_bytes()
}

fn val(i: u64, generation: u64) -> Vec<u8> {
    format!("value-{i:08}-gen{generation:04}").into_bytes()
}

fn file_config() -> DatabaseConfig {
    DatabaseConfig {
        data_pages: 256,
        pool_frames: 512,
        scrub: ScrubConfig::disabled(),
        ..DatabaseConfig::default()
    }
}

fn load(db: &Database, n: u64, generation: u64) {
    for i in 0..n {
        db.put_auto(&key(i), &val(i, generation)).unwrap();
    }
}

fn assert_all(db: &Database, n: u64, generation: u64) {
    for i in 0..n {
        assert_eq!(
            db.get(&key(i)).unwrap().as_deref(),
            Some(val(i, generation).as_slice()),
            "key {i} wrong or missing"
        );
    }
}

// ----------------------------------------------------------------------
// File-backed lifecycle
// ----------------------------------------------------------------------

#[test]
fn clean_close_then_reopen_preserves_everything() {
    let tmp = TempDir::new("spf-close").unwrap();
    let dir = tmp.path().join("db");

    let db = Database::create_at(file_config(), &dir).unwrap();
    load(&db, 300, 0);
    load(&db, 150, 1); // overwrite half, so both generations matter
    let want = db.dump_all().unwrap();
    db.close().unwrap();

    let db = Database::open(&dir, file_config()).unwrap();
    assert_eq!(db.dump_all().unwrap(), want);
    assert_all(&db, 150, 1);
    assert!(db.verify_tree().unwrap().is_empty());
    // The reopened engine keeps working: fresh updates commit and read.
    load(&db, 50, 2);
    assert_all(&db, 50, 2);
}

#[test]
fn drop_without_close_is_crash_equivalent() {
    let tmp = TempDir::new("spf-drop").unwrap();
    let dir = tmp.path().join("db");

    let db = Database::create_at(file_config(), &dir).unwrap();
    load(&db, 200, 0);
    db.checkpoint().unwrap();
    load(&db, 200, 1); // a tail of committed work after the checkpoint
    drop(db); // no close(): dirty pages and the manifest go stale

    let db = Database::open(&dir, file_config()).unwrap();
    assert_all(&db, 200, 1);
    assert!(db.verify_tree().unwrap().is_empty());
}

#[test]
fn manifest_survives_wal_truncation_cycle() {
    let tmp = TempDir::new("spf-trunc").unwrap();
    let dir = tmp.path().join("db");
    let config = DatabaseConfig {
        archive: ArchiveConfig::default_on(),
        ..file_config()
    };

    let db = Database::create_at(config, &dir).unwrap();
    load(&db, 300, 0);
    db.archive_now().unwrap();
    db.checkpoint().unwrap();
    let dropped = db.truncate_wal().unwrap();
    assert!(dropped > 0, "a checkpointed, archived WAL prefix must go");
    load(&db, 100, 1);
    drop(db);

    // Reopen starts from the truncated log: the archive (reloaded from
    // its run files) plus the retained WAL cover all history.
    let db = Database::open(&dir, config).unwrap();
    assert_all(&db, 100, 1);
    for i in 100..300 {
        assert_eq!(
            db.get(&key(i)).unwrap().as_deref(),
            Some(val(i, 0).as_slice())
        );
    }
}

// ----------------------------------------------------------------------
// Kill -9 oracle (same binary re-executed as the victim)
// ----------------------------------------------------------------------

fn kill_child_dir() -> Option<String> {
    std::env::var("SPF_KILL_CHILD_DIR").ok()
}

/// Not a real test: this is the sacrificial child process. When the
/// env var is absent (every normal test run) it does nothing.
#[test]
fn kill_child_entry() {
    let Some(dir) = kill_child_dir() else {
        return;
    };
    let kill_at: u64 = std::env::var("SPF_KILL_AT").unwrap().parse().unwrap();
    let db = Database::create_at(file_config(), Path::new(&dir)).unwrap();
    for i in 0..=kill_at {
        db.put_auto(&key(i), &val(i, 7)).unwrap();
        if i % 10 == 9 {
            db.checkpoint().unwrap();
        }
    }
    // Every put above committed (its log force returned). Die without
    // any shutdown path — simulating a power cut.
    std::process::abort();
}

#[test]
fn killed_process_loses_no_committed_transaction() {
    if kill_child_dir().is_some() {
        return; // we *are* the child; only kill_child_entry runs
    }
    for kill_at in [0u64, 7, 23, 41] {
        let tmp = TempDir::new("spf-kill").unwrap();
        let dir = tmp.path().join("db");
        let exe = std::env::current_exe().unwrap();
        let status = Command::new(&exe)
            .args(["kill_child_entry", "--exact", "--nocapture"])
            .env("SPF_KILL_CHILD_DIR", &dir)
            .env("SPF_KILL_AT", kill_at.to_string())
            .status()
            .expect("spawn victim");
        assert!(!status.success(), "the victim must abort, not exit 0");

        let db = Database::open(&dir, file_config()).expect("restart recovery");
        assert_all(&db, kill_at + 1, 7);
        assert!(db.verify_tree().unwrap().is_empty());
    }
}

// ----------------------------------------------------------------------
// Mirror as a backup-page source (Section 5.2.2)
// ----------------------------------------------------------------------

fn mirrored_config() -> DatabaseConfig {
    DatabaseConfig {
        data_pages: 512,
        pool_frames: 1024,
        mirror: true,
        scrub: ScrubConfig::disabled(),
        ..DatabaseConfig::default()
    }
}

#[test]
fn corrupt_primary_page_repairs_from_mirror() {
    let db = Database::create(mirrored_config()).unwrap();
    load(&db, 400, 0);
    db.checkpoint().unwrap();
    db.pool().flush_all().unwrap();

    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 16 }),
    );
    db.drop_cache();

    assert_all(&db, 400, 0);
    let stats = db.stats();
    assert!(
        stats.spf.from_mirror >= 1,
        "repair must have used the mirror copy, got {:?}",
        stats.spf
    );
    assert_eq!(stats.spf.escalations, 0);
}

#[test]
fn failed_primary_recovers_from_mirror_without_a_backup() {
    let db = Database::create(mirrored_config()).unwrap();
    load(&db, 400, 0);
    db.checkpoint().unwrap();
    load(&db, 120, 1); // committed tail not yet on either device

    // No full backup was ever taken: traditional media recovery is
    // impossible...
    db.fail_device();
    assert!(db.media_recover().is_err());

    // ...but the mirror holds a verified copy of every page.
    let (media, _restart) = db.media_recover_from_mirror().unwrap();
    assert!(media.pages_restored > 0);
    assert_all(&db, 120, 1);
    for i in 120..400 {
        assert_eq!(
            db.get(&key(i)).unwrap().as_deref(),
            Some(val(i, 0).as_slice())
        );
    }
    assert!(db.verify_tree().unwrap().is_empty());
}

#[test]
fn mirrored_file_database_reopens_with_mirror() {
    let tmp = TempDir::new("spf-mirror-file").unwrap();
    let dir = tmp.path().join("db");
    let config = DatabaseConfig {
        mirror: true,
        ..file_config()
    };

    let db = Database::create_at(config, &dir).unwrap();
    load(&db, 200, 0);
    db.close().unwrap();
    assert!(dir.join("mirror.dat").exists());

    // The manifest remembers mirroring even if the caller forgets it.
    let mut reopen = file_config();
    reopen.mirror = false;
    let db = Database::open(&dir, reopen).unwrap();
    assert!(db.mirror().is_some(), "manifest must re-arm the mirror");
    assert_all(&db, 200, 0);

    // And the mirror actually serves repairs after reopening.
    db.pool().flush_all().unwrap();
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::ZeroPage),
    );
    db.drop_cache();
    assert_all(&db, 200, 0);
    assert!(db.stats().spf.from_mirror >= 1);
}

// ----------------------------------------------------------------------
// Sync faults on the file device
// ----------------------------------------------------------------------

#[test]
fn lost_write_at_sync_is_detected_and_repaired() {
    let tmp = TempDir::new("spf-lostwrite").unwrap();
    let dir = tmp.path().join("db");
    let config = DatabaseConfig {
        scrub: ScrubConfig::default_on(),
        ..file_config()
    };

    let db = Database::create_at(config, &dir).unwrap();
    load(&db, 300, 0);
    db.checkpoint().unwrap();

    // Arm a lost write on a leaf, update every key so the victim page is
    // re-dirtied, and flush: the victim's write is acknowledged but
    // silently dropped at sync — the device keeps the stale version.
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(victim, FaultSpec::LostWriteAtSync);
    load(&db, 300, 1);
    db.checkpoint().unwrap();
    db.pool().flush_all().unwrap();
    db.drop_cache();

    // The scrubber's PageLSN cross-check catches the stale page and its
    // repair queue heals it from the per-page log chain.
    let report = db.scrub_now().unwrap();
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.detector == DetectorClass::StaleLsn)
        .collect();
    assert!(
        !stale.is_empty(),
        "lost write must surface as StaleLsn, findings: {:?}",
        report.findings
    );
    assert!(report.escalations.is_empty());

    assert_all(&db, 300, 1);
    assert!(db.verify_tree().unwrap().is_empty());
}

// ----------------------------------------------------------------------
// Crash black box
// ----------------------------------------------------------------------

/// Clean shutdown persists a black box next to the data; reopening
/// rotates it aside (`blackbox.prev.spfb`) so the new incarnation can
/// never clobber the previous run's forensics.
#[test]
fn close_writes_blackbox_and_reopen_rotates_it() {
    let tmp = TempDir::new("spf-blackbox").unwrap();
    let dir = tmp.path().join("db");
    let cur = dir.join(spf_obs::BLACKBOX_FILE);
    let prev = dir.join(spf_obs::BLACKBOX_PREV_FILE);

    let db = Database::create_at(file_config(), &dir).unwrap();
    assert!(db.obs().blackbox_armed(), "file-backed engines arm capture");
    load(&db, 100, 0);
    db.close().unwrap();

    let bb = spf_obs::BlackBox::load(&cur).expect("close must persist a black box");
    assert_eq!(bb.reason, "clean shutdown");
    assert!(
        bb.metrics_json.contains("\"txn\""),
        "snapshot rides along: {}",
        &bb.metrics_json[..bb.metrics_json.len().min(200)]
    );

    // Reopen: the old box rotates aside before the engine re-arms.
    let db = Database::open(&dir, file_config()).unwrap();
    assert!(prev.exists(), "previous box must rotate, not vanish");
    assert!(
        !cur.exists(),
        "current slot is empty until the next capture"
    );
    assert_all(&db, 100, 0);
    db.close().unwrap();

    assert!(cur.exists() && prev.exists(), "both generations retained");
    let rotated = spf_obs::BlackBox::load(&prev).unwrap();
    assert_eq!(rotated.reason, "clean shutdown");
}
