//! The online scrubber end to end: detector attribution across the full
//! fault taxonomy, twin-engine zero-data-loss oracles, background
//! self-healing under a fault storm concurrent with foreground traffic,
//! and Figure 1 escalation when repair is impossible.

use spf::{
    CorruptionMode, Database, DatabaseConfig, DetectorClass, FailureClass, FaultSpec, PageId,
    ScrubConfig, SimDuration,
};
use spf_workload::{FaultStorm, FaultStormConfig, KeyDistribution, Op, OpMix, StormEvent};

fn key(i: u64) -> Vec<u8> {
    format!("key-{i:08}").into_bytes()
}

fn val(i: u64, gen: u64) -> Vec<u8> {
    format!("value-{i:08}-gen{gen}").into_bytes()
}

fn config() -> DatabaseConfig {
    DatabaseConfig {
        data_pages: 1024,
        pool_frames: 128,
        scrub: ScrubConfig {
            enabled: true,
            pages_per_tick: 32,
            tick_idle: SimDuration::from_micros(100),
        },
        ..DatabaseConfig::default()
    }
}

fn load(db: &Database, n: u64) {
    let tx = db.begin();
    for i in 0..n {
        db.insert(tx, &key(i), &val(i, 0)).unwrap();
    }
    db.commit(tx).unwrap();
}

fn update_all(db: &Database, n: u64, gen: u64) {
    let tx = db.begin();
    for i in 0..n {
        db.put(tx, &key(i), &val(i, gen)).unwrap();
    }
    db.commit(tx).unwrap();
}

const KEYS: u64 = 1500;

/// Arms each fault of the `fault.rs` taxonomy on a cold page, runs one
/// scrub cycle, and asserts (a) the finding is attributed to the
/// detector class the fault table documents, (b) the fault is repaired,
/// and (c) the repaired engine's contents are byte-identical to a
/// fault-free twin fed the exact same operations.
#[test]
fn every_taxonomy_fault_is_caught_by_its_documented_detector() {
    let cases: Vec<(&str, FaultSpec, bool)> = vec![
        (
            "bit-rot",
            FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 8 }),
            false,
        ),
        (
            "zero-page",
            FaultSpec::SilentCorruption(CorruptionMode::ZeroPage),
            false,
        ),
        (
            "garbage-header",
            FaultSpec::SilentCorruption(CorruptionMode::GarbageHeader),
            false,
        ),
        (
            "stale-version",
            FaultSpec::SilentCorruption(CorruptionMode::StaleVersion),
            true, // lost writes exist only if writes follow the arming
        ),
        // Misdirected target filled in per-engine below.
        (
            "torn-write",
            FaultSpec::TornWrite {
                persisted_prefix: 512,
            },
            true, // the tear happens on the next write
        ),
        ("hard-read-error", FaultSpec::HardReadError, false),
        (
            "wear-out",
            FaultSpec::WearOut {
                writes_remaining: 0,
            },
            false,
        ),
    ];

    for (name, fault, update_after_arm) in cases {
        check_detection_and_repair(name, fault, update_after_arm);
    }

    // Misdirected needs a second leaf as the served image; build it here.
    let db = Database::create(config()).unwrap();
    load(&db, KEYS);
    let leaves = db.leaf_pages();
    assert!(leaves.len() >= 2, "need two leaves for misdirection");
    let (victim, instead) = (leaves[0], leaves[1]);
    db.drop_cache();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::Misdirected { instead }),
    );
    let report = db.scrub_now().unwrap();
    let finding = report
        .findings
        .iter()
        .find(|f| f.page == victim)
        .expect("misdirection must be found");
    assert_eq!(finding.detector, DetectorClass::SelfId);
    assert_eq!(report.repairs, 1);
    assert!(db.device().injector().faulted_pages().is_empty());
}

fn check_detection_and_repair(name: &str, fault: FaultSpec, update_after_arm: bool) {
    let db = Database::create(config()).unwrap();
    let twin = Database::create(config()).unwrap();
    load(&db, KEYS);
    load(&twin, KEYS);
    db.drop_cache();

    let victim = db.any_leaf_page().expect("a leaf exists");
    let expected = DetectorClass::expected_for(&fault);
    db.inject_fault(victim, fault);
    if update_after_arm {
        update_all(&db, KEYS, 1);
        update_all(&twin, KEYS, 1);
        db.drop_cache(); // write-backs hit the armed fault; pages go cold
    }

    let report = db.scrub_now().unwrap();
    let finding = report
        .findings
        .iter()
        .find(|f| f.page == victim)
        .unwrap_or_else(|| panic!("{name}: fault on {victim} not found; report {report:?}"));
    assert!(
        expected.contains(&finding.detector),
        "{name}: detected by {}, fault table documents {expected:?}",
        finding.detector
    );
    assert_eq!(report.repairs, 1, "{name}: must be repaired");
    assert!(report.escalations.is_empty(), "{name}: no escalation");
    assert!(
        db.device().injector().faulted_pages().is_empty(),
        "{name}: fault must be cleared by repair"
    );

    // Twin oracle: zero data loss.
    assert_eq!(
        db.dump_all().unwrap(),
        twin.dump_all().unwrap(),
        "{name}: repaired engine must match the fault-free twin"
    );

    // Attribution also lands in the cumulative stats (DbStats surface).
    let stats = db.stats();
    assert!(
        expected.iter().any(|c| stats.scrub.found_by(*c) > 0),
        "{name}: stats must attribute the finding"
    );
    assert_eq!(stats.scrub.repairs, 1);
    assert_eq!(stats.scrub.repair_failures, 0);
    assert!(
        stats.scrub.mean_time_to_detect().is_some(),
        "{name}: detection latency must be measured"
    );

    // A second sweep finds a healthy device.
    let report = db.scrub_now().unwrap();
    assert!(report.findings.is_empty(), "{name}: must stay healed");
}

/// The acceptance scenario: the scrubber runs on its background thread
/// while foreground transactions keep committing, and a seeded fault
/// storm keeps corrupting cold pages. At the end every armed fault has
/// been detected and repaired — by the scrubber or by Figure 8 when the
/// foreground got there first — with zero data loss against a twin
/// engine fed the identical operation stream.
#[test]
fn background_scrubber_self_heals_under_concurrent_fault_storm() {
    let db = Database::create(config()).unwrap();
    let twin = Database::create(config()).unwrap();
    load(&db, KEYS);
    load(&twin, KEYS);
    let leaves = db.leaf_pages();
    db.drop_cache();

    assert!(db.start_scrubber(), "background scrubber must start");
    assert!(!db.start_scrubber(), "second start is a no-op");

    let mut storm = FaultStorm::new(
        42,
        KEYS,
        KeyDistribution::Zipfian { theta: 0.99 },
        32,
        FaultStormConfig {
            fault_rate: 0.01,
            include_hard_errors: true,
            mix: OpMix::update_heavy(),
        },
    );
    let mut injected = 0u64;
    for event in storm.take_events(4_000) {
        match event {
            StormEvent::Op(op) => apply_to_both(&db, &twin, &op),
            StormEvent::Inject {
                victim,
                other,
                kind,
            } => {
                let victim_page = leaves[victim % leaves.len()];
                let mut instead = leaves[other % leaves.len()];
                if instead == victim_page {
                    // Self-misdirection serves the page's own valid image:
                    // undetectable by construction, so aim elsewhere.
                    instead = leaves[(other + 1) % leaves.len()];
                }
                db.inject_fault(victim_page, kind.to_spec(instead));
                injected += 1;
            }
        }
    }
    assert!(injected > 0, "the storm must have injected faults");

    db.stop_scrubber();
    db.stop_scrubber(); // idempotent

    // Make any remaining armed stale-write fault observable (a lost
    // write needs a write to lose), then sweep until the device is
    // clean. Bounded: each sweep repairs everything it can see.
    update_all(&db, KEYS, 9);
    update_all(&twin, KEYS, 9);
    db.drop_cache();
    for _ in 0..4 {
        if db.device().injector().faulted_pages().is_empty() {
            break;
        }
        db.scrub_now().unwrap();
    }
    assert!(
        db.device().injector().faulted_pages().is_empty(),
        "every armed fault must be repaired, leftover: {:?}",
        db.device().injector().faulted_pages()
    );

    // Zero data loss: the storm-battered engine matches its fault-free
    // twin exactly.
    assert_eq!(db.dump_all().unwrap(), twin.dump_all().unwrap());

    let stats = db.stats();
    assert!(
        stats.scrub.cycles_completed > 0 || stats.scrub.pages_scanned > 0,
        "the background scrubber must have swept"
    );
    let healed = stats.scrub.repairs + stats.pool.pages_recovered;
    assert!(
        healed > 0,
        "something must have been repaired (scrub {} + inline {})",
        stats.scrub.repairs,
        stats.pool.pages_recovered
    );
    assert_eq!(stats.scrub.repair_failures, 0, "nothing may escalate");
    // The scrubber's reads are metered separately from foreground I/O.
    assert!(stats.device.scrub_reads > 0);
}

fn apply_to_both(db: &Database, twin: &Database, op: &Op) {
    match op {
        Op::Put { key, value } => {
            let a = db.put_auto(key, value).unwrap();
            let b = twin.put_auto(key, value).unwrap();
            assert_eq!(a, b, "put result diverged");
        }
        Op::Get { key } => {
            let a = db.get(key).unwrap();
            let b = twin.get(key).unwrap();
            assert_eq!(a, b, "get diverged on {key:?}");
        }
        Op::Delete { key } => {
            let a = delete_auto(db, key);
            let b = delete_auto(twin, key);
            assert_eq!(a, b, "delete diverged on {key:?}");
        }
        Op::Scan { start, limit } => {
            let a = db.scan(start, *limit).unwrap();
            let b = twin.scan(start, *limit).unwrap();
            assert_eq!(a, b, "scan diverged at {start:?}");
        }
    }
}

fn delete_auto(db: &Database, key: &[u8]) -> Option<Vec<u8>> {
    let tx = db.begin();
    match db.delete(tx, key) {
        Ok(old) => {
            db.commit(tx).unwrap();
            Some(old)
        }
        Err(_) => {
            let _ = db.abort(tx);
            None
        }
    }
}

/// When single-page repair is impossible (here: the page recovery index
/// lost the page's entry), the scrubbed failure escalates along
/// Figure 1 — recorded in `DbStats`, never a panic.
#[test]
fn unrepairable_fault_escalates_along_figure_1() {
    // Multi-device node: single-page → media.
    let db = Database::create(config()).unwrap();
    load(&db, KEYS);
    db.drop_cache();
    let victim = db.any_leaf_page().unwrap();
    db.pri().remove(victim);
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 8 }),
    );
    let report = db.scrub_now().unwrap();
    assert!(report.findings.iter().any(|f| f.page == victim));
    assert_eq!(report.repairs, 0);
    assert_eq!(report.escalations.len(), 1);
    assert_eq!(report.escalations[0].page, victim);
    assert_eq!(report.escalations[0].escalated_to, FailureClass::Media);
    let stats = db.stats();
    assert_eq!(stats.scrub.repair_failures, 1);
    assert_eq!(stats.scrub.escalations_media, 1);
    assert_eq!(stats.scrub.escalations_system, 0);
    assert_eq!(db.scrubber().unwrap().escalated().len(), 1);
    // The engine survives: further sweeps re-find, re-escalate, no panic.
    let report = db.scrub_now().unwrap();
    assert_eq!(report.escalations.len(), 1);

    // Single-device node: the same failure runs on to a system failure.
    let db = Database::create(DatabaseConfig {
        single_device_node: true,
        ..config()
    })
    .unwrap();
    load(&db, KEYS);
    db.drop_cache();
    let victim = db.any_leaf_page().unwrap();
    db.pri().remove(victim);
    db.inject_fault(victim, FaultSpec::HardReadError);
    let report = db.scrub_now().unwrap();
    assert_eq!(report.escalations.len(), 1);
    assert_eq!(report.escalations[0].escalated_to, FailureClass::System);
    let stats = db.stats();
    assert_eq!(stats.scrub.escalations_media, 1, "passed through media");
    assert_eq!(stats.scrub.escalations_system, 1);
}

/// Engine paths that discard the whole pool (`drop_cache`, `crash`,
/// media recovery) must quiesce the background scrubber first — its
/// transient pins and in-flight repair markers would otherwise trip
/// the pool's discard assertions mid-sweep.
#[test]
fn crash_and_drop_cache_quiesce_the_background_scrubber() {
    let db = Database::create(config()).unwrap();
    load(&db, 400);
    db.checkpoint().unwrap();
    assert!(db.start_scrubber());
    // drop_cache pauses the daemon for the discard and resumes it.
    db.drop_cache();
    assert!(
        !db.start_scrubber(),
        "the daemon must have been resumed after drop_cache"
    );
    // A crash takes the daemon down with the server; restart recovers
    // the engine and the operator starts a fresh daemon.
    db.crash();
    assert!(db.restart().is_ok());
    assert!(
        db.start_scrubber(),
        "a recovered server starts a fresh scrubber"
    );
    assert!(db.stop_scrubber());
    assert!(!db.stop_scrubber(), "second stop is a no-op");
}

/// The traditional engine has no scrubber at all; the façade says so
/// instead of pretending.
#[test]
fn traditional_engine_has_no_scrubber() {
    let db = Database::create(DatabaseConfig::traditional()).unwrap();
    assert!(db.scrubber().is_none());
    assert!(db.scrub_now().is_err());
    assert!(!db.start_scrubber());
    db.stop_scrubber(); // no-op, no panic
    assert_eq!(db.stats().scrub, spf::ScrubStats::default());
}

/// Scrub I/O is rate-limited: the simulated clock is charged the
/// configured idle time per tick, bounding the scrubber's share of
/// device bandwidth.
#[test]
fn scrub_cycles_charge_the_simulated_io_budget() {
    let db = Database::create(DatabaseConfig {
        data_pages: 512,
        scrub: ScrubConfig {
            enabled: true,
            pages_per_tick: 8,
            tick_idle: SimDuration::from_millis(2),
        },
        ..config()
    })
    .unwrap();
    load(&db, 400);
    db.drop_cache();
    let allocated = db.leaf_pages().len() as u64; // lower bound on extent
    let t0 = db.clock().now();
    db.scrub_now().unwrap();
    let elapsed = db.clock().now() - t0;
    let min_ticks = allocated / 8;
    assert!(
        elapsed >= SimDuration::from_millis(2 * min_ticks),
        "rate limit must charge the clock: {elapsed} for ≥{min_ticks} ticks"
    );
}

/// `PageId` re-export sanity for the scrub surface (documentation
/// example parity).
#[test]
fn scrub_finding_names_real_pages() {
    let db = Database::create(config()).unwrap();
    load(&db, 200);
    db.drop_cache();
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::ZeroPage),
    );
    let report = db.scrub_now().unwrap();
    let pages: Vec<PageId> = report.findings.iter().map(|f| f.page).collect();
    assert_eq!(pages, vec![victim]);
}
