//! Façade-level tests of the predictive prefetcher and the shared
//! background-I/O governor: configuration wiring, the poll thread's
//! lifecycle across crash/drop_cache, and end-to-end hit-rate lift on a
//! sequential access pattern.

use spf::{Database, DatabaseConfig, PrefetchConfig, ScrubConfig};

fn key(i: u64) -> Vec<u8> {
    format!("user{i:012}").into_bytes()
}

fn val(i: u64) -> Vec<u8> {
    format!("value-{i:06}-{}", "x".repeat(64)).into_bytes()
}

fn load(db: &Database, n: u64) {
    let tx = db.begin();
    for i in 0..n {
        db.insert(tx, &key(i), &val(i)).unwrap();
    }
    db.commit(tx).unwrap();
    db.checkpoint().unwrap();
}

#[test]
fn sequential_reads_drive_prefetch_through_the_facade() {
    // Disk costs, so simulated time passes on every I/O and the
    // governor's rate-based refill actually accrues budget.
    let db = Database::create(DatabaseConfig::with_disk_costs()).unwrap();
    load(&db, 4_000);
    db.drop_cache();

    let prefetcher = db.prefetcher().expect("default config wires one").clone();
    for i in 0..4_000 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i)));
        prefetcher.poll();
    }

    let stats = db.stats();
    assert!(
        stats.prefetch.observed_faults > 0,
        "the pool must feed the observer: {:?}",
        stats.prefetch
    );
    assert!(
        stats.prefetch.installed > 0,
        "the +1 leaf stride must be learned and installed: {:?}",
        stats.prefetch
    );
    assert!(
        stats.pool.prefetch_hits > 0,
        "installed pages must be touched by the foreground: {:?}",
        stats.pool
    );
    assert!(stats.governor.granted_prefetch > 0);
    // The device distinguishes prefetch reads from foreground reads:
    // every prefetch read either installed or was abandoned for lack of
    // a claimable frame (the read happens before the frame claim).
    assert_eq!(
        stats.device.prefetch_reads,
        stats.prefetch.installed + stats.prefetch.no_frame + stats.prefetch.failed
    );
    assert_eq!(stats.pool.prefetch_installed, stats.prefetch.installed);
    assert!(stats.pool.prefetch_hit_ratio() > 0.0);
}

#[test]
fn disabled_config_wires_no_prefetcher() {
    let db = Database::create(DatabaseConfig {
        prefetch: PrefetchConfig::disabled(),
        ..DatabaseConfig::default()
    })
    .unwrap();
    load(&db, 200);
    db.drop_cache();
    for i in 0..200 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i)));
    }
    assert!(db.prefetcher().is_none());
    assert!(!db.start_prefetcher());
    let stats = db.stats();
    assert_eq!(stats.prefetch, spf::PrefetchStats::default());
    assert_eq!(stats.pool.prefetch_issued, 0);
    assert_eq!(stats.device.prefetch_reads, 0);
}

#[test]
fn prefetch_thread_lifecycle_survives_crash_and_drop_cache() {
    let db = Database::create(DatabaseConfig::default()).unwrap();
    load(&db, 1_000);

    assert!(db.start_prefetcher(), "first start spawns the thread");
    assert!(!db.start_prefetcher(), "second start is a no-op");

    // drop_cache pauses and resumes the poller around the discard.
    db.drop_cache();
    assert!(!db.start_prefetcher(), "still running after drop_cache");

    // Concurrent traffic while the poller runs: results stay correct.
    for i in 0..1_000 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i)));
    }

    // The thread dies in a crash and is not resurrected implicitly.
    db.crash();
    assert!(!db.stop_prefetcher(), "crash already stopped the thread");
    db.restart().unwrap();
    assert!(db.start_prefetcher(), "a recovered server restarts it");
    assert!(db.stop_prefetcher());
    assert!(!db.stop_prefetcher(), "stop is idempotent");
}

#[test]
fn governor_is_shared_between_scrubber_and_prefetcher() {
    // A throttled scrub budget also bounds the prefetcher: both draw
    // from the one bucket the façade derives from the scrub pacing.
    let db = Database::create(DatabaseConfig {
        scrub: ScrubConfig {
            enabled: true,
            pages_per_tick: 8,
            tick_idle: spf::SimDuration::from_millis(1),
        },
        ..DatabaseConfig::default()
    })
    .unwrap();
    load(&db, 2_000);
    db.drop_cache();

    let prefetcher = db.prefetcher().unwrap().clone();
    for i in 0..2_000 {
        let _ = db.get(&key(i)).unwrap();
        prefetcher.poll();
    }
    db.scrub_now().unwrap();

    let gov = db.governor().stats();
    assert!(gov.granted_scrub > 0, "scrub drew from the bucket: {gov:?}");
    assert!(
        gov.throttle_waits > 0,
        "a throttled sweep must have waited: {gov:?}"
    );
    // The budget is one pool: total grants stay within rate × elapsed
    // (8 pages/ms) plus the one-burst cap.
    let elapsed_ms = db.stats().now.as_nanos() / 1_000_000;
    let budget = 8 * (elapsed_ms + 1) + 8;
    assert!(
        gov.granted_scrub + gov.granted_prefetch <= budget,
        "grants {} + {} exceed budget {budget}",
        gov.granted_scrub,
        gov.granted_prefetch,
    );
}
