//! The log-archive subsystem end to end: WAL truncation with
//! archive-backed single-page recovery, restart, and media recovery.
//!
//! The centerpiece is a randomized oracle: two engines fed the identical
//! operation stream — so their logs are byte-for-byte identical — where
//! one archives and truncates its WAL at a random point. Single-page
//! recovery must return **byte-identical** pages on both, across random
//! update counts, backup policies, and truncation points.

use proptest::prelude::*;

use spf::{BackupPolicy, CorruptionMode, Database, DatabaseConfig, DbError, FaultSpec, Lsn};

fn key(i: u64) -> Vec<u8> {
    format!("key-{i:08}").into_bytes()
}

fn val(i: u64, gen: u64) -> Vec<u8> {
    format!("value-{i:08}-gen{gen}").into_bytes()
}

fn small_config(backup_every: Option<u32>) -> DatabaseConfig {
    DatabaseConfig {
        data_pages: 1024,
        pool_frames: 64,
        backup_policy: match backup_every {
            Some(n) => BackupPolicy {
                every_n_updates: Some(n),
            },
            None => BackupPolicy::disabled(),
        },
        ..DatabaseConfig::default()
    }
}

fn load(db: &Database, n: u64) {
    let tx = db.begin();
    for i in 0..n {
        db.insert(tx, &key(i), &val(i, 0)).unwrap();
    }
    db.commit(tx).unwrap();
}

/// Applies `count` deterministic single-key updates drawn from `seed`.
fn apply_updates(db: &Database, key_space: u64, seed: u64, skip: u64, count: u64) {
    if count == 0 {
        return;
    }
    let tx = db.begin();
    let mut state = seed | 1;
    for step in 0..skip + count {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if step < skip {
            continue;
        }
        let k = (state >> 33) % key_space;
        db.put(tx, &key(k), &val(k, step)).unwrap();
    }
    db.commit(tx).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// Oracle: archive-backed recovery ≡ pure chain-walk recovery, byte
    /// for byte, with the WAL footprint strictly smaller after
    /// truncation.
    #[test]
    fn prop_archive_recovery_matches_chain_walk(
        updates in 0u64..120,
        trunc_percent in 0u32..=100,
        backup_choice in 0u32..3,
        seed in 1u64..1_000_000,
    ) {
        let backup_every = [None, Some(5u32), Some(40)][backup_choice as usize];
        let key_space = 200u64;
        let phase1 = updates * u64::from(trunc_percent) / 100;
        let phase2 = updates - phase1;

        // Two engines, identical streams: identical logs, LSNs, pages.
        let db_plain = Database::create(small_config(backup_every)).unwrap();
        let db_arch = Database::create(small_config(backup_every)).unwrap();
        for db in [&db_plain, &db_arch] {
            load(db, key_space);
            apply_updates(db, key_space, seed, 0, phase1);
            db.pool().flush_all().unwrap();
            db.checkpoint().unwrap();
        }
        // Only one of them archives + truncates. Neither call appends to
        // the log, so the streams stay identical afterwards.
        let report = db_arch.archive_now().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let dropped = db_arch.truncate_wal().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert!(report.to >= report.from);
        for db in [&db_plain, &db_arch] {
            apply_updates(db, key_space, seed, phase1, phase2);
            db.pool().flush_all().unwrap();
            db.log().force();
        }

        let victim = db_plain.any_leaf_page().expect("leaves exist");
        prop_assert_eq!(db_arch.any_leaf_page(), Some(victim), "identical engines");

        let page_plain = db_plain
            .single_page_recovery().unwrap()
            .recover_page(victim)
            .map_err(TestCaseError::fail)?;
        let page_arch = db_arch
            .single_page_recovery().unwrap()
            .recover_page(victim)
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(
            page_plain.as_bytes(),
            page_arch.as_bytes(),
            "recovered images must be byte-identical"
        );

        if dropped > 0 {
            prop_assert!(
                db_arch.log().total_bytes() < db_plain.log().total_bytes(),
                "truncation must shrink the live WAL ({} vs {})",
                db_arch.log().total_bytes(),
                db_plain.log().total_bytes()
            );
            prop_assert_eq!(db_arch.log().stats().bytes_truncated, dropped);
        }
        // The plain engine never consulted its (empty) archive.
        prop_assert_eq!(
            db_plain.single_page_recovery().unwrap().stats().archive_records_fetched,
            0
        );
    }
}

#[test]
fn restart_works_from_checkpoint_plus_archive_after_truncation() {
    let db = Database::create(small_config(Some(40))).unwrap();
    load(&db, 600);
    let tx = db.begin();
    for i in 0..600 {
        db.put(tx, &key(i), &val(i, 1)).unwrap();
    }
    db.commit(tx).unwrap();
    db.pool().flush_all().unwrap();
    db.checkpoint().unwrap();
    db.archive_now().unwrap();
    let dropped = db.truncate_wal().unwrap();
    assert!(dropped > 0, "there was history to truncate");
    assert!(db.log().truncate_point().is_valid());

    // One loser transaction the restart must roll back — its records
    // become durable when the later commit forces the log.
    let loser = db.begin();
    db.put(loser, &key(599), b"never-committed").unwrap();
    // Post-truncation activity, committed (durable in the WAL tail).
    let tx = db.begin();
    for i in 0..300 {
        db.put(tx, &key(i), &val(i, 2)).unwrap();
    }
    db.commit(tx).unwrap();

    db.crash();
    let report = db.restart().unwrap();
    assert!(
        report.archive_records_scanned > 0,
        "analysis consulted the archive for pre-truncation history"
    );
    assert!(report.losers >= 1, "the in-flight transaction lost");

    for i in 0..600u64 {
        let expect = if i < 300 { val(i, 2) } else { val(i, 1) };
        assert_eq!(db.get(&key(i)).unwrap(), Some(expect), "key {i}");
    }
    assert!(db.verify_tree().unwrap().is_empty());

    // Single-page recovery still succeeds against injected corruption
    // with the tail truncated (the acceptance bar for this subsystem).
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 8 }),
    );
    db.drop_cache();
    for i in 0..600u64 {
        assert!(
            db.get(&key(i)).unwrap().is_some(),
            "key {i} post-corruption"
        );
    }
    let spf = db.stats().spf;
    assert!(spf.recoveries >= 1, "corruption was repaired inline");
    assert_eq!(spf.escalations, 0);
}

#[test]
fn media_recovery_replays_archived_history() {
    let db = Database::create(small_config(None)).unwrap();
    load(&db, 400);
    db.take_full_backup().unwrap();
    let tx = db.begin();
    for i in 0..400 {
        db.put(tx, &key(i), &val(i, 1)).unwrap();
    }
    db.commit(tx).unwrap();
    db.pool().flush_all().unwrap();
    db.checkpoint().unwrap();
    db.archive_now().unwrap();
    let dropped = db.truncate_wal().unwrap();
    assert!(dropped > 0);
    let (_, horizon) = db.last_full_backup().unwrap();
    assert!(
        horizon < db.log().truncate_point(),
        "the backup horizon predates the WAL tail — replay must start in the archive"
    );

    db.fail_device();
    db.pool().discard_all();
    let (media, _restart) = db.media_recover().unwrap();
    assert!(
        media.archive_records_replayed > 0,
        "replay drew on the archive runs"
    );
    for i in 0..400u64 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 1)), "key {i}");
    }
}

#[test]
fn truncation_is_refused_until_it_is_safe() {
    let db = Database::create(small_config(None)).unwrap();
    load(&db, 100);
    // No archive run, no checkpoint: nothing may be truncated.
    assert_eq!(db.safe_truncation_lsn(), Lsn::NULL);
    assert_eq!(db.truncate_wal().unwrap(), 0);

    // Archived but never checkpointed: still refused.
    db.archive_now().unwrap();
    assert_eq!(db.safe_truncation_lsn(), Lsn::NULL);
    assert_eq!(db.truncate_wal().unwrap(), 0);

    // A long-running transaction pins the safe LSN at its begin record.
    let pinned = db.begin();
    db.put(pinned, &key(0), b"pin").unwrap();
    db.checkpoint().unwrap();
    db.archive_now().unwrap();
    let safe_pinned = db.safe_truncation_lsn();
    db.commit(pinned).unwrap();
    db.checkpoint().unwrap();
    db.archive_now().unwrap();
    let safe_after = db.safe_truncation_lsn();
    assert!(
        safe_after > safe_pinned,
        "committing the old transaction advances the safe LSN \
         ({safe_pinned} -> {safe_after})"
    );
    assert!(db.truncate_wal().unwrap() > 0);
    // The engine still answers reads afterwards.
    for i in 0..100u64 {
        assert!(db.get(&key(i)).unwrap().is_some());
    }
}

#[test]
fn archiving_disabled_behaves_like_the_seed() {
    let db = Database::create(DatabaseConfig {
        archive: spf::ArchiveConfig::disabled(),
        ..small_config(None)
    })
    .unwrap();
    load(&db, 50);
    assert!(db.archive().is_none());
    assert!(matches!(db.archive_now(), Err(DbError::RecoveryFailed(_))));
    db.checkpoint().unwrap();
    assert_eq!(
        db.truncate_wal().unwrap(),
        0,
        "no archive watermark: the WAL may never be truncated"
    );
    assert_eq!(db.stats().archive, spf::ArchiveStats::default());
}

#[test]
fn leveled_merging_bounds_run_count_in_the_engine() {
    let db = Database::create(DatabaseConfig {
        archive: spf::ArchiveConfig {
            enabled: true,
            merge_fanout: 2,
        },
        ..small_config(None)
    })
    .unwrap();
    load(&db, 200);
    for gen in 1..=9u64 {
        let tx = db.begin();
        for i in 0..50 {
            db.put(tx, &key(i), &val(i, gen)).unwrap();
        }
        db.commit(tx).unwrap();
        db.archive_now().unwrap();
    }
    let archive = db.archive().unwrap();
    let counts = archive.level_run_counts();
    assert!(
        counts.iter().all(|&c| c < 2),
        "fanout-2 leveling leaves every level under 2 runs: {counts:?}"
    );
    let stats = db.stats().archive;
    assert!(stats.merges > 0);
    assert_eq!(stats.runs_written, 9);
    // History is intact across all those merges: recovery still works.
    db.pool().flush_all().unwrap();
    db.checkpoint().unwrap();
    db.archive_now().unwrap();
    assert!(db.truncate_wal().unwrap() > 0);
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::ZeroPage),
    );
    db.drop_cache();
    for i in 0..200u64 {
        assert!(db.get(&key(i)).unwrap().is_some(), "key {i}");
    }
    assert_eq!(db.stats().spf.escalations, 0);
}
