//! End-to-end integration tests: the full engine under crashes, media
//! failures, and every single-page failure mode the injector can produce.

use std::collections::BTreeMap;

use proptest::prelude::*;

use spf::{
    BackupPolicy, CorruptionMode, Database, DatabaseConfig, DbError, FailureClass, FaultSpec,
};

fn key(i: u64) -> Vec<u8> {
    format!("key-{i:08}").into_bytes()
}

fn val(i: u64, gen: u64) -> Vec<u8> {
    format!("value-{i:08}-gen{gen}").into_bytes()
}

fn small_config() -> DatabaseConfig {
    DatabaseConfig {
        data_pages: 1024,
        pool_frames: 64,
        ..DatabaseConfig::default()
    }
}

fn load(db: &Database, n: u64) {
    let tx = db.begin();
    for i in 0..n {
        db.insert(tx, &key(i), &val(i, 0)).unwrap();
    }
    db.commit(tx).unwrap();
}

// ----------------------------------------------------------------------
// Durability and restart
// ----------------------------------------------------------------------

#[test]
fn committed_updates_survive_crash() {
    let db = Database::create(small_config()).unwrap();
    load(&db, 500);
    db.crash();
    let report = db.restart().unwrap();
    assert!(
        report.redo_applied > 0,
        "nothing was flushed: redo must replay"
    );
    for i in 0..500 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 0)), "key {i}");
    }
    assert!(db.verify_tree().unwrap().is_empty());
}

#[test]
fn group_commit_telemetry_flows_through_db_stats() {
    let db = Database::create(small_config()).unwrap();
    for i in 0..50 {
        let tx = db.begin();
        db.insert(tx, &key(i), &val(i, 0)).unwrap();
        db.commit(tx).unwrap();
    }
    let stats = db.stats();
    assert_eq!(stats.txn.user_commits, 50);
    // Single-threaded: no combined flushes, every commit pays one force
    // (engine startup and write-backs may add a few more).
    assert_eq!(stats.log.force_batches, 0);
    assert_eq!(stats.log.force_waiters_absorbed, 0);
    assert!(stats.forces_per_commit() >= 1.0);
    assert!(stats.log.bytes_per_force() > 0.0);
    // Flush accounting is exact: every durable byte was flushed once.
    assert_eq!(
        stats.log.bytes_forced,
        db.log().durable_lsn().0 - spf::Lsn::FIRST.0
    );
}

#[test]
fn uncommitted_updates_vanish_on_crash() {
    let db = Database::create(small_config()).unwrap();
    load(&db, 100);
    // A transaction that never commits…
    let tx = db.begin();
    for i in 100..150 {
        db.insert(tx, &key(i), &val(i, 1)).unwrap();
    }
    db.put(tx, &key(5), b"overwritten").unwrap();
    // …crash without commit.
    db.crash();
    db.restart().unwrap();
    for i in 100..150 {
        assert_eq!(
            db.get(&key(i)).unwrap(),
            None,
            "uncommitted insert {i} must vanish"
        );
    }
    assert_eq!(db.get(&key(5)).unwrap(), Some(val(5, 0)));
    assert!(db.verify_tree().unwrap().is_empty());
}

#[test]
fn loser_with_flushed_pages_is_rolled_back() {
    // The hard case: uncommitted updates that *did* reach the device
    // (stolen pages) must be undone by CLRs at restart.
    let db = Database::create(small_config()).unwrap();
    load(&db, 200);
    let tx = db.begin();
    for i in 0..50 {
        db.put(tx, &key(i), b"dirty-uncommitted").unwrap();
    }
    // Force the dirty pages out (the log is forced first per WAL).
    db.pool().flush_all().unwrap();
    db.crash();
    let report = db.restart().unwrap();
    assert!(report.losers >= 1);
    assert!(report.clrs_written >= 50, "flushed loser updates need CLRs");
    for i in 0..50 {
        assert_eq!(
            db.get(&key(i)).unwrap(),
            Some(val(i, 0)),
            "key {i} must be rolled back"
        );
    }
    assert!(db.verify_tree().unwrap().is_empty());
}

#[test]
fn restart_is_idempotent() {
    let db = Database::create(small_config()).unwrap();
    load(&db, 300);
    db.crash();
    db.restart().unwrap();
    let all_once: Vec<_> = db.dump_all().unwrap();
    // Crash again immediately (recovery work itself unflushed) and rerun.
    db.crash();
    db.restart().unwrap();
    assert_eq!(db.dump_all().unwrap(), all_once);
}

#[test]
fn checkpoint_reduces_restart_redo() {
    let mk = || {
        let db = Database::create(small_config()).unwrap();
        load(&db, 800);
        db
    };
    // Without checkpoint.
    let db = mk();
    db.crash();
    let without = db.restart().unwrap();

    // With checkpoint (flushes dirty pages and logs PRI updates).
    let db = mk();
    db.checkpoint().unwrap();
    db.crash();
    let with = db.restart().unwrap();

    assert!(
        with.redo_pages_read < without.redo_pages_read,
        "checkpoint must cut redo reads: {} vs {}",
        with.redo_pages_read,
        without.redo_pages_read
    );
    assert!(
        with.writes_confirmed_by_pri > 0,
        "PRI records confirm the checkpoint writes"
    );
}

// ----------------------------------------------------------------------
// Single-page failures: every injected mode, detected and repaired
// ----------------------------------------------------------------------

fn fault_matrix() -> Vec<(&'static str, FaultSpec)> {
    vec![
        (
            "bit-rot",
            FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 16 }),
        ),
        (
            "zero-page",
            FaultSpec::SilentCorruption(CorruptionMode::ZeroPage),
        ),
        ("hard-read-error", FaultSpec::HardReadError),
        (
            "torn-write",
            FaultSpec::TornWrite {
                persisted_prefix: 512,
            },
        ),
        (
            "stale-version",
            FaultSpec::SilentCorruption(CorruptionMode::StaleVersion),
        ),
    ]
}

#[test]
fn every_fault_mode_is_detected_and_repaired() {
    for (name, fault) in fault_matrix() {
        let db = Database::create(small_config()).unwrap();
        load(&db, 1500);
        db.checkpoint().unwrap();

        let victim = db.any_leaf_page().expect("tree has leaves");
        db.inject_fault(victim, fault.clone());

        // For write-affecting faults, produce a post-fault write.
        let tx = db.begin();
        for i in 0..1500 {
            db.put(tx, &key(i), &val(i, 2)).unwrap();
        }
        db.commit(tx).unwrap();
        db.drop_cache(); // force re-reads through Figure 8

        // Every key must still be readable — the failure is absorbed.
        for i in 0..1500 {
            assert_eq!(
                db.get(&key(i)).unwrap(),
                Some(val(i, 2)),
                "fault {name}: key {i} lost"
            );
        }
        let stats = db.stats();
        assert!(
            stats.spf.recoveries >= 1 || stats.pool.pages_recovered >= 1,
            "fault {name}: no recovery recorded: {stats:?}"
        );
        assert!(
            db.verify_tree().unwrap().is_empty(),
            "fault {name}: tree damaged"
        );
    }
}

#[test]
fn traditional_engine_escalates_instead() {
    // Same scenario, single_page_recovery disabled: Figure 1's escalation.
    let db = Database::create(DatabaseConfig {
        data_pages: 1024,
        pool_frames: 64,
        ..DatabaseConfig::traditional()
    })
    .unwrap();
    load(&db, 1500);
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 16 }),
    );
    db.drop_cache();

    let mut escalated = false;
    for i in 0..1500 {
        match db.get(&key(i)) {
            Err(DbError::Failure { class, .. }) => {
                assert_eq!(
                    class,
                    FailureClass::Media,
                    "multi-device node -> media failure"
                );
                escalated = true;
                break;
            }
            Ok(_) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(
        escalated,
        "a traditional engine must declare a media failure"
    );

    // On a single-device node, the same failure is a *system* failure.
    let db = Database::create(DatabaseConfig {
        data_pages: 1024,
        pool_frames: 64,
        single_device_node: true,
        ..DatabaseConfig::traditional()
    })
    .unwrap();
    load(&db, 1500);
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::ZeroPage),
    );
    db.drop_cache();
    let mut class_seen = None;
    for i in 0..1500 {
        if let Err(DbError::Failure { class, .. }) = db.get(&key(i)) {
            class_seen = Some(class);
            break;
        }
    }
    assert_eq!(class_seen, Some(FailureClass::System));
}

#[test]
fn lost_write_is_caught_only_by_pri_cross_check() {
    // The introduction's nightmare: a device acknowledging writes it
    // drops. The stale image passes every in-page test; only the PageLSN
    // cross-check against the page recovery index notices.
    let db = Database::create(small_config()).unwrap();
    load(&db, 1500);
    db.checkpoint().unwrap();

    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::StaleVersion),
    );

    // Update everything (the victim included), flush, drop cache.
    let tx = db.begin();
    for i in 0..1500 {
        db.put(tx, &key(i), &val(i, 9)).unwrap();
    }
    db.commit(tx).unwrap();
    db.drop_cache();

    for i in 0..1500 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 9)), "key {i}");
    }
    let stats = db.stats();
    assert!(
        stats.pool.detected_stale_lsn >= 1,
        "staleness must be caught by the PRI cross-check: {stats:?}"
    );
    assert_eq!(
        stats.pool.detected_checksum, 0,
        "checksums cannot see lost writes"
    );
}

#[test]
fn multiple_simultaneous_page_failures() {
    let db = Database::create(DatabaseConfig {
        data_pages: 4096,
        pool_frames: 128,
        ..DatabaseConfig::default()
    })
    .unwrap();
    load(&db, 5000);
    db.checkpoint().unwrap();

    let leaves = db.leaf_pages();
    assert!(leaves.len() >= 16);
    // Fail a quarter of all leaves at once, mixed modes.
    let victims: Vec<_> = leaves.iter().step_by(4).copied().collect();
    for (i, &v) in victims.iter().enumerate() {
        let fault = match i % 3 {
            0 => FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 8 }),
            1 => FaultSpec::HardReadError,
            _ => FaultSpec::SilentCorruption(CorruptionMode::ZeroPage),
        };
        db.inject_fault(v, fault);
    }
    db.drop_cache();

    for i in 0..5000 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 0)), "key {i}");
    }
    let stats = db.stats();
    assert!(
        stats.spf.recoveries as usize >= victims.len(),
        "all {} victims must recover, got {}",
        victims.len(),
        stats.spf.recoveries
    );
    assert!(db.verify_tree().unwrap().is_empty());
}

#[test]
fn failure_detected_mid_transaction_does_not_abort_it() {
    // The paper's headline: "it is not even required that any
    // transactions terminate."
    let db = Database::create(small_config()).unwrap();
    load(&db, 1500);
    db.checkpoint().unwrap();
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 8 }),
    );
    db.drop_cache();

    let tx = db.begin();
    // This transaction reads and writes across the failure.
    for i in 0..1500 {
        let old = db.get(&key(i)).unwrap();
        assert_eq!(old, Some(val(i, 0)));
        db.put(tx, &key(i), &val(i, 3)).unwrap();
    }
    db.commit(tx).unwrap();
    assert!(db.stats().spf.recoveries >= 1);
    assert_eq!(db.get(&key(7)).unwrap(), Some(val(7, 3)));
}

// ----------------------------------------------------------------------
// Media recovery and backups
// ----------------------------------------------------------------------

#[test]
fn media_recovery_restores_whole_device() {
    let db = Database::create(small_config()).unwrap();
    load(&db, 1000);
    db.take_full_backup().unwrap();

    // More committed work after the backup.
    let tx = db.begin();
    for i in 1000..1200 {
        db.insert(tx, &key(i), &val(i, 0)).unwrap();
    }
    for i in 0..100 {
        db.put(tx, &key(i), &val(i, 7)).unwrap();
    }
    db.commit(tx).unwrap();

    // The whole device fails.
    db.fail_device();
    db.pool().discard_all();
    assert!(matches!(db.get(&key(1)), Err(DbError::Failure { .. })));

    let (media, _restart) = db.media_recover().unwrap();
    assert_eq!(media.pages_restored, db.config().data_pages);
    assert!(media.redo_applied > 0, "post-backup updates must replay");

    for i in 0..100 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 7)));
    }
    for i in 1000..1200 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 0)));
    }
    assert!(db.verify_tree().unwrap().is_empty());
}

#[test]
fn single_page_recovery_works_from_full_backup_entry() {
    // After a full backup the PRI holds one range entry; a page failure
    // must recover through the FullBackup reference + per-page chain.
    let db = Database::create(DatabaseConfig {
        backup_policy: BackupPolicy::disabled(), // no per-page backups
        ..small_config()
    })
    .unwrap();
    load(&db, 1500);
    db.take_full_backup().unwrap();
    let entries_after_backup = db.stats().pri.entries;

    // Post-backup updates create per-page chains beyond the backup.
    let tx = db.begin();
    for i in 0..1500 {
        db.put(tx, &key(i), &val(i, 4)).unwrap();
    }
    db.commit(tx).unwrap();

    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::ZeroPage),
    );
    db.drop_cache();
    for i in 0..1500 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 4)), "key {i}");
    }
    let stats = db.stats();
    assert!(stats.spf.recoveries >= 1);
    assert!(
        stats.spf.chain_records_fetched > 0,
        "chain replay over the backup image"
    );
    assert!(
        entries_after_backup <= 2,
        "full backup must compress the PRI"
    );
}

#[test]
fn pri_rebuild_after_crash_still_recovers_pages() {
    // Crash (PRI is volatile) → restart rebuilds it from the log → a page
    // failure afterwards still recovers.
    let db = Database::create(small_config()).unwrap();
    load(&db, 1500);
    db.checkpoint().unwrap();
    db.crash();
    db.restart().unwrap();

    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 8 }),
    );
    db.drop_cache();
    for i in 0..1500 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 0)), "key {i}");
    }
    assert!(db.stats().spf.recoveries >= 1);
}

#[test]
fn failure_during_restart_redo_recovers_inline() {
    // A page fails *while restart recovery itself* is reading it: the
    // recoverer is already wired, so redo's fetch recovers inline.
    let db = Database::create(small_config()).unwrap();
    load(&db, 1000);
    db.checkpoint().unwrap();
    let tx = db.begin();
    for i in 0..1000 {
        db.put(tx, &key(i), &val(i, 5)).unwrap();
    }
    db.commit(tx).unwrap();

    let victim = db.any_leaf_page().unwrap();
    db.crash();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 8 }),
    );
    db.restart().unwrap();
    for i in 0..1000 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 5)), "key {i}");
    }
}

// ----------------------------------------------------------------------
// Property: crash-recovery equivalence
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Random committed transactions + a crash at a random point ⇒ after
    /// restart the database equals exactly the committed prefix.
    #[test]
    fn prop_crash_recovery_equivalence(
        txns in proptest::collection::vec(
            proptest::collection::vec((0u64..300, 0u64..1000, prop::bool::ANY), 1..20),
            1..12
        ),
        crash_after in 0usize..12,
        do_checkpoint in prop::bool::ANY,
    ) {
        let db = Database::create(DatabaseConfig {
            data_pages: 2048,
            pool_frames: 32, // tiny pool: constant eviction + write-back
            ..DatabaseConfig::default()
        }).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for (t, ops) in txns.iter().enumerate() {
            if t == crash_after {
                break;
            }
            let tx = db.begin();
            let mut staged = model.clone();
            for (ki, vi, is_delete) in ops {
                let k = key(*ki);
                if *is_delete {
                    match db.delete(tx, &k) {
                        Ok(_) => { staged.remove(&k); },
                        Err(DbError::Tree(spf_btree::BTreeError::KeyNotFound)) => {},
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                } else {
                    let v = val(*ki, *vi);
                    db.put(tx, &k, &v).unwrap();
                    staged.insert(k, v);
                }
            }
            db.commit(tx).unwrap();
            model = staged;
            if do_checkpoint && t == crash_after / 2 {
                db.checkpoint().unwrap();
            }
        }

        // One more transaction that never commits.
        let tx = db.begin();
        db.put(tx, b"never", b"committed").unwrap();

        db.crash();
        db.restart().unwrap();

        let got = db.dump_all().unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(db.get(b"never").unwrap(), None);
        prop_assert!(db.verify_tree().unwrap().is_empty());
    }
}

#[test]
fn recover_then_relocate_off_bad_block() {
    // The complete §5.2.3 story: a page fails, single-page recovery
    // repairs it inline, and the page is then moved to a new location
    // with the old one retired on the bad-block list.
    let db = Database::create(small_config()).unwrap();
    load(&db, 1500);
    db.checkpoint().unwrap();

    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 8 }),
    );
    db.drop_cache();

    // Reads repair inline…
    for i in 0..1500 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 0)));
    }
    assert!(db.stats().spf.recoveries >= 1);

    // …then the repaired page moves off the suspect block.
    let new_pid = db.relocate_page(victim).unwrap();
    assert_ne!(new_pid, victim);
    db.drop_cache();

    for i in 0..1500 {
        assert_eq!(
            db.get(&key(i)).unwrap(),
            Some(val(i, 0)),
            "key {i} after relocation"
        );
    }
    assert!(db.verify_tree().unwrap().is_empty());

    // The relocated page is itself recoverable (format record = backup).
    db.inject_fault(
        new_pid,
        FaultSpec::SilentCorruption(CorruptionMode::ZeroPage),
    );
    db.drop_cache();
    for i in 0..1500 {
        assert_eq!(
            db.get(&key(i)).unwrap(),
            Some(val(i, 0)),
            "key {i} after second failure"
        );
    }
    assert!(db.stats().spf.recoveries >= 2);
}

#[test]
fn relocation_survives_crash_and_restart() {
    let db = Database::create(small_config()).unwrap();
    load(&db, 1000);
    db.checkpoint().unwrap();
    let victim = db.any_leaf_page().unwrap();
    let _new_pid = db.relocate_page(victim).unwrap();
    // Post-relocation updates, then crash before everything flushes.
    let tx = db.begin();
    for i in 0..1000 {
        db.put(tx, &key(i), &val(i, 8)).unwrap();
    }
    db.commit(tx).unwrap();
    db.crash();
    db.restart().unwrap();
    for i in 0..1000 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 8)), "key {i}");
    }
    assert!(db.verify_tree().unwrap().is_empty());
}
