//! Observability end to end: stats reconciliation on a quiesced engine,
//! full-snapshot JSON/Prometheus exposition, the Debug-field drift
//! guard, and the flight recorder's detect→repair/escalate chains.

use spf::{
    CorruptionMode, Database, DatabaseConfig, EventKind, FaultSpec, MetricsSnapshot, ScrubConfig,
    SimDuration,
};

fn key(i: u64) -> Vec<u8> {
    format!("key-{i:08}").into_bytes()
}

fn val(i: u64) -> Vec<u8> {
    format!("value-{i:08}").into_bytes()
}

fn obs_config() -> DatabaseConfig {
    DatabaseConfig {
        data_pages: 1024,
        pool_frames: 64,
        scrub: ScrubConfig {
            enabled: true,
            pages_per_tick: 64,
            tick_idle: SimDuration::from_micros(100),
        },
        ..DatabaseConfig::default()
    }
}

/// Drives a mixed workload and quiesces: puts, rereads through a cold
/// cache, one scrub sweep over an injected fault.
fn exercised_db() -> Database {
    let db = Database::create(obs_config()).unwrap();
    for i in 0..300 {
        db.put_auto(&key(i), &val(i)).unwrap();
    }
    db.checkpoint().unwrap();
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 5 }),
    );
    db.drop_cache();
    db.scrub_now().unwrap();
    for i in 0..300 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i)));
    }
    db
}

/// Cross-subsystem invariants that must hold on any quiesced snapshot:
/// counters maintained by different crates have to reconcile, or one of
/// them is lying.
#[test]
fn quiesced_snapshot_reconciles_across_subsystems() {
    let db = exercised_db();
    let snap = db.metrics_snapshot();
    let g = |grp: &str, m: &str| {
        snap.get(grp, m)
            .unwrap_or_else(|| panic!("{grp}.{m} missing"))
    };

    // The WAL can only force what was appended, and every user commit
    // forces the log (group commit merges flushes, not force calls).
    assert!(g("wal", "bytes_forced") <= g("wal", "bytes_appended"));
    assert!(g("wal", "forces") >= g("txn", "user_commits"));
    assert!(g("txn", "user_commits") >= 300, "one per put_auto");

    // Every tree node visit goes through the pool, and every miss is
    // satisfied by a device read.
    assert!(
        g("pool", "hits") + g("pool", "misses") + g("pool", "coalesced_misses")
            >= g("tree", "node_visits")
    );
    assert!(g("device", "random_reads") + g("device", "sequential_reads") >= g("pool", "misses"));

    // Scrub accounting: every finding was repaired, deferred to the
    // foreground, or failed (and then escalated).
    let findings = g("scrub", "found_checksum")
        + g("scrub", "found_self_id")
        + g("scrub", "found_plausibility")
        + g("scrub", "found_fence_keys")
        + g("scrub", "found_stale_lsn")
        + g("scrub", "found_hard_error");
    assert!(findings >= 1, "the injected bit rot must be found");
    assert_eq!(
        findings,
        g("scrub", "repairs") + g("scrub", "repairs_deferred") + g("scrub", "repair_failures")
    );

    // The repair was timed: the hot-path span histograms saw traffic.
    let put = snap.get_histogram("latency", "put_auto_ns").unwrap();
    assert_eq!(put.count, 300);
    assert!(put.p50 <= put.p95 && put.p95 <= put.p99 && put.p99 <= put.max);
    assert!(snap.get("latency", "log_force_ns").unwrap() >= 1);
}

/// Every group must serialize into both expositions, metric for metric.
#[test]
fn snapshot_serializes_every_group_in_json_and_prometheus() {
    let db = Database::create(DatabaseConfig {
        mirror: true,
        ..obs_config()
    })
    .unwrap();
    for i in 0..50 {
        db.put_auto(&key(i), &val(i)).unwrap();
    }
    let snap = db.metrics_snapshot();

    for expected in [
        "pool",
        "wal",
        "txn",
        "tree",
        "spf",
        "pri",
        "backups",
        "maintainer",
        "device",
        "mirror_device",
        "backup_device",
        "archive",
        "scrub",
        "prefetch",
        "governor",
        "latency",
        "trace",
    ] {
        assert!(
            snap.groups.iter().any(|g| g.name == expected),
            "group {expected} missing from snapshot"
        );
    }

    let json = snap.to_json();
    let prom = snap.to_prometheus();
    // The exposition must be parseable Prometheus text: every family
    // declared once with a `# TYPE`, summaries complete with their
    // `_count`/`_sum` series, every value numeric.
    spf_obs::validate_prometheus(&prom).expect("exposition must parse");
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "JSON braces balance"
    );
    for group in &snap.groups {
        assert!(json.contains(&format!("\"{}\":{{", group.name)));
        for m in &group.metrics {
            assert!(
                json.contains(&format!("\"{}\":", m.name)),
                "{}.{} missing from JSON",
                group.name,
                m.name
            );
            assert!(
                prom.contains(&format!("spf_{}_{}", group.name, m.name)),
                "{}.{} missing from Prometheus exposition",
                group.name,
                m.name
            );
        }
    }
}

/// The anti-drift guard this PR exists for: every depth-1 field of every
/// stats struct reachable from `DbStats` must surface in the metrics
/// snapshot under its group — a counter added to any subsystem without a
/// matching `observe()` line fails here, not silently.
#[test]
fn stats_fields_cannot_drift_from_metrics() {
    let db = exercised_db();
    let stats = db.stats();
    let snap = db.metrics_snapshot();

    let cases: Vec<(&str, String)> = vec![
        ("pool", format!("{:#?}", stats.pool)),
        ("wal", format!("{:#?}", stats.log)),
        ("txn", format!("{:#?}", stats.txn)),
        ("tree", format!("{:#?}", stats.tree)),
        ("spf", format!("{:#?}", stats.spf)),
        ("pri", format!("{:#?}", stats.pri)),
        ("backups", format!("{:#?}", stats.backups)),
        ("maintainer", format!("{:#?}", stats.maintainer)),
        ("device", format!("{:#?}", stats.device)),
        ("backup_device", format!("{:#?}", stats.backup_device)),
        ("archive", format!("{:#?}", stats.archive)),
        ("scrub", format!("{:#?}", stats.scrub)),
        ("prefetch", format!("{:#?}", stats.prefetch)),
        ("governor", format!("{:#?}", stats.governor)),
        ("trace", format!("{:#?}", stats.trace)),
    ];
    for (group, debug) in cases {
        let fields = spf_obs::debug_field_names(&debug);
        assert!(!fields.is_empty(), "no fields parsed for {group}");
        let metrics = &snap
            .groups
            .iter()
            .find(|g| g.name == group)
            .unwrap_or_else(|| panic!("group {group} missing"))
            .metrics;
        for field in fields {
            assert!(
                metrics
                    .iter()
                    .any(|m| m.name == field || m.name.starts_with(&field)),
                "stats field {group}.{field} has no matching metric — \
                 add it to the Observable impl"
            );
        }
    }
}

/// An injected fault repaired on the foreground read path leaves a
/// complete detect→repair chain in the flight recorder, and an MTTR
/// sample in the audit ledger.
#[test]
fn injected_fault_leaves_detect_repair_chain_in_trace() {
    let db = Database::create(obs_config()).unwrap();
    for i in 0..200 {
        db.put_auto(&key(i), &val(i)).unwrap();
    }
    db.checkpoint().unwrap();
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 8 }),
    );
    db.drop_cache();
    // Clear history so the drained window is about this incident.
    let _ = db.obs().drain_trace();
    for i in 0..200 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i)));
    }
    assert_eq!(db.stats().spf.recoveries, 1);

    let trace = db.obs().drain_trace();
    assert!(!trace.is_empty());
    let detected: Vec<_> = trace
        .of_kind(EventKind::FaultDetected)
        .filter(|e| e.a == victim.0)
        .collect();
    assert!(
        !detected.is_empty(),
        "no FaultDetected for the victim:\n{trace}"
    );
    let repaired: Vec<_> = trace
        .of_kind(EventKind::RepairOk)
        .filter(|e| e.a == victim.0)
        .collect();
    assert!(!repaired.is_empty(), "no RepairOk for the victim:\n{trace}");
    assert!(
        detected[0].sim <= repaired[0].sim,
        "detection precedes repair"
    );

    let mttr = db.obs().ledger().mttr_snapshot();
    assert!(
        mttr.get("single_page").is_some_and(|h| h.count >= 1),
        "repair was not recorded as an MTTR sample: {mttr:?}"
    );
}

/// When repair is impossible the Figure-1 escalation lands in the audit
/// ledger together with the event window that led up to it.
#[test]
fn escalation_is_recorded_with_its_event_window() {
    let db = Database::create(DatabaseConfig::traditional()).unwrap();
    for i in 0..50 {
        db.put_auto(&key(i), &val(i)).unwrap();
    }
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(victim, FaultSpec::HardReadError);
    db.drop_cache();
    assert!(db.get(&key(0)).is_err(), "traditional engine cannot repair");

    let escs = db.obs().ledger().escalations();
    assert!(!escs.is_empty());
    let last = escs.last().unwrap();
    assert_eq!(last.escalated_to, "media");
    assert!(
        !last.trace.is_empty(),
        "the escalation must capture its triggering event window"
    );
}

/// With `obs: false` the hot paths stay silent (no events, no span
/// samples) while the metrics registry keeps working.
#[test]
fn disabled_tracing_is_silent_but_metrics_still_work() {
    let db = Database::create(DatabaseConfig {
        obs: false,
        ..obs_config()
    })
    .unwrap();
    for i in 0..100 {
        db.put_auto(&key(i), &val(i)).unwrap();
    }
    assert!(db.obs().drain_trace().is_empty());
    let snap: MetricsSnapshot = db.metrics_snapshot();
    assert_eq!(
        snap.get_histogram("latency", "put_auto_ns").unwrap().count,
        0
    );
    assert!(snap.get("txn", "user_commits").unwrap() >= 100);

    // Flipping tracing on at runtime starts recording immediately.
    db.obs().set_enabled(true);
    db.put_auto(&key(0), &val(1)).unwrap();
    assert!(db
        .obs()
        .drain_trace()
        .of_kind(EventKind::TxCommit)
        .next()
        .is_some());
}

/// Causal tracing end to end: with sampling on, a `put_auto` roots a
/// trace tree whose children reconstruct the operation — descent, the
/// buffer fault it took through a cold cache, the commit and its log
/// force — with every nanosecond classified by wait state.
#[test]
fn sampled_put_auto_reconstructs_the_causal_chain() {
    let db = Database::create(DatabaseConfig {
        trace_sample_every: 1,
        ..obs_config()
    })
    .unwrap();
    for i in 0..50 {
        db.put_auto(&key(i), &val(i)).unwrap();
    }
    db.checkpoint().unwrap();
    db.drop_cache();
    let _ = db.drain_trace_trees(); // only the post-cold-cache ops matter
    let _ = db.obs().drain_trace();
    db.put_auto(&key(0), &val(1)).unwrap();

    // The sampling gate left its mark in the flight recorder.
    assert!(
        db.obs()
            .drain_trace()
            .of_kind(EventKind::TraceSampled)
            .next()
            .is_some(),
        "sampled operation must emit TraceSampled"
    );

    let stitched = db.drain_trace_trees();
    let tree = stitched
        .trees
        .iter()
        .find(|t| {
            t.roots
                .iter()
                .any(|r| r.record.kind == spf_obs::SpanKind::PutAuto)
        })
        .expect("a put_auto-rooted trace tree");
    let root = &tree.roots[0];

    let mut kinds = Vec::new();
    tree.each_node(|n| kinds.push(n.record.kind));
    for want in [
        spf_obs::SpanKind::Descent,
        spf_obs::SpanKind::PageMiss,
        spf_obs::SpanKind::Commit,
    ] {
        assert!(kinds.contains(&want), "missing {want:?} in {kinds:?}");
    }

    // Children nest inside the root, so the wait-state decomposition
    // telescopes: every nanosecond of the operation is classified.
    tree.each_node(|n| {
        assert!(n.record.start_nanos >= root.record.start_nanos);
        assert!(n.record.end_nanos() <= root.record.end_nanos());
    });
    let profile = tree.wait_profile();
    assert_eq!(profile.total_nanos, root.record.dur_nanos);
    assert_eq!(profile.classified_nanos(), profile.total_nanos);
    assert!(
        profile.class_nanos(spf_obs::WaitClass::MissIo) > 0,
        "the cold-cache fault must be classified as miss I/O"
    );

    // The same drain renders as Chrome tracing JSON.
    db.put_auto(&key(1), &val(1)).unwrap();
    let json = db.export_traces();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("put_auto"));

    let stats = db.stats();
    assert!(stats.trace.sampled_traces >= 50);
    assert!(stats.trace.spans_recorded > stats.trace.sampled_traces);
}
