//! Offline stand-in for the subset of `proptest` used by this
//! workspace's tests: the `proptest!` macro with a `proptest_config`
//! header, `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! `ProptestConfig::with_cases`, `TestCaseError`, `any::<T>()`,
//! `prop::bool::ANY`, `prop::collection::vec`, integer-range strategies,
//! and tuple composition.
//!
//! The build container has no registry access, so the real crate cannot
//! be fetched. Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its seed, case index, and
//!   the generated inputs (via `Debug`), but is not minimized.
//! * **Fixed seeding.** Cases derive from a fixed base seed, so runs are
//!   reproducible; there is no `PROPTEST_` env handling except
//!   `PROPTEST_CASES` to override the case count.
//! * Only the strategy combinators the workspace actually names exist.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A test-case failure, carrying its message.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a message (mirrors
    /// `TestCaseError::fail`).
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }

    /// Rejects the current case (treated as failure here, since without
    /// shrinking there is no replacement-case machinery).
    pub fn reject(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Shorthand for the result type `proptest!` bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Generates random values of an associated type. Unlike real proptest
/// there is no value tree and no simplification — `generate` draws a
/// value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors
    /// `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of one value (mirrors
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`].
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: fmt::Debug> OneOf<V> {
    /// Wraps the given alternatives (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Self { options }
    }
}

impl<V: fmt::Debug> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (`any::<u16>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy over both boolean values.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// Uniform over `true` / `false`.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a random length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec size range must be non-empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Runs `case` for each configured case with a per-case seeded RNG.
/// Called by the expansion of [`proptest!`]; panics (failing the
/// enclosing `#[test]`) on the first failing case.
pub fn run_proptest<F>(config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    // Per-test base seed so distinct tests explore distinct streams but
    // every run of the same test is identical.
    let base = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    for i in 0..cases {
        let mut rng = TestRng::seed_from_u64(base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = case(&mut rng) {
            panic!("proptest '{test_name}' failed at case {i} of {cases}: {e}");
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests. Supports the forms the workspace uses:
/// an optional `#![proptest_config(expr)]` header followed by test
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_proptest(config, stringify!($name), |proptest_rng| {
                    $crate::__proptest_bind!(proptest_rng; $($params)*);
                    let body_result: $crate::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    body_result
                });
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($params)*) $body
            )+
        }
    };
}

/// Internal: expands `proptest!` parameter lists into `let` bindings.
/// Supports both binding forms real proptest accepts — `name in strategy`
/// and the `name: Type` shorthand for `any::<Type>()` — in any order.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident in $strategy:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strategy), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident in $strategy:expr) => {
        let $arg = $crate::Strategy::generate(&($strategy), $rng);
    };
    ($rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg: $ty = $crate::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident : $ty:ty) => {
        let $arg: $ty = $crate::Arbitrary::arbitrary($rng);
    };
}

/// Uniform choice among alternative strategies for the same value type
/// (mirrors `prop_oneof!`; weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec::Vec::new();
        $( options.push(::std::boxed::Box::new($strategy)); )+
        $crate::OneOf::new(options)
    }};
}

/// Fails the current case (by early `Err` return) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            ops in prop::collection::vec((0u8..4, 0u64..400, any::<u16>()), 1..40),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(!ops.is_empty());
            prop_assert!(ops.len() < 40);
            for (op, k, _v) in &ops {
                prop_assert!(*op < 4, "op {op} out of range");
                prop_assert!(*k < 400);
            }
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn default_config_form_compiles(x in 0usize..10) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::run_proptest(ProptestConfig::with_cases(5), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn same_test_name_gives_identical_streams() {
        let mut a = Vec::new();
        crate::run_proptest(ProptestConfig::with_cases(8), "stream", |rng| {
            a.push(crate::Strategy::generate(&(0u64..1_000_000), rng));
            Ok(())
        });
        let mut b = Vec::new();
        crate::run_proptest(ProptestConfig::with_cases(8), "stream", |rng| {
            b.push(crate::Strategy::generate(&(0u64..1_000_000), rng));
            Ok(())
        });
        assert_eq!(a, b);
    }
}
