//! Offline stand-in for the subset of `rand` 0.8 used by this workspace:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool, fill_bytes}`, and `distributions::{Distribution, Standard}`.
//!
//! The build container has no registry access, so the real crate cannot
//! be fetched. The API shapes match rand 0.8 exactly (call sites compile
//! unchanged); the *stream* of numbers does not match the real `StdRng`
//! (this one is xoshiro256++ seeded via SplitMix64). Every consumer in
//! the workspace only requires seeded determinism — identical seeds give
//! identical streams across runs and platforms — never a specific
//! ChaCha-12 stream, so this is sufficient.

#![forbid(unsafe_code)]

/// Low-level source of randomness, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`](distributions::Standard)
    /// distribution (`rng.gen::<f64>()` etc.).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from a range (`0..n` or `0..=n`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data (alias of
    /// [`RngCore::fill_bytes`], as `rand::Rng::fill` for `[u8]`).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding, mirroring `rand::SeedableRng` (only the `seed_from_u64`
/// entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator standing in for `rand::rngs::StdRng`:
    /// xoshiro256++ with SplitMix64 seed expansion. Not the real StdRng
    /// stream — see the crate docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::Rng;

    /// A sampling strategy over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over all values
    /// for integers and bool, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Uniform-range sampling, mirroring `rand::distributions::uniform`.
    pub mod uniform {
        use super::super::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Integer types that can be drawn uniformly from a range.
        /// (Lemire-style rejection is overkill here; modulo bias over a
        /// 64-bit draw is ≤ 2⁻⁴⁰ for every span the workspace uses.)
        pub trait SampleUniform: Copy {
            /// Widens to u64 (two's-complement for signed).
            fn to_u64(self) -> u64;
            /// Narrows from u64.
            fn from_u64(v: u64) -> Self;
        }

        macro_rules! impl_sample_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn to_u64(self) -> u64 { self as u64 }
                    fn from_u64(v: u64) -> Self { v as $t }
                }
            )*};
        }
        impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        /// Range arguments accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
                assert!(lo < hi, "cannot sample empty range");
                T::from_u64(lo + rng.next_u64() % (hi - lo))
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi - lo;
                if span == u64::MAX {
                    return T::from_u64(rng.next_u64());
                }
                T::from_u64(lo + rng.next_u64() % (span + 1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Distribution;
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distribution_trait_is_object_usable_via_generics() {
        struct Halves;
        impl Distribution<u64> for Halves {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
                rng.next_u64() / 2
            }
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = Halves.sample(&mut rng);
    }
}
