//! Offline stand-in for the subset of `criterion` used by this
//! workspace's benches: `Criterion`, `benchmark_group` + `sample_size` +
//! `bench_function` + `finish`, `Bencher::{iter, iter_custom,
//! iter_batched}`, `BatchSize`, `black_box`, and the `criterion_group!`
//! / `criterion_main!` macros. The `SPF_BENCH_SAMPLES` environment
//! variable overrides every sample size (CI smoke runs set it low).
//!
//! The build container has no registry access, so the real harness
//! cannot be fetched. This one keeps the same call shapes so benches
//! compile unchanged (`cargo bench --no-run` is part of tier-1), and it
//! really measures: each benchmark is warmed up, then timed over
//! `sample_size` samples with an iteration count auto-scaled to the
//! routine's speed, reporting min/median/mean per iteration. No
//! statistics beyond that, no HTML reports, no comparison to saved
//! baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time target; long enough to average out scheduler noise,
/// short enough that a full bench suite stays interactive.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// How setup output is handled in `iter_batched`. All variants behave
/// identically here (setup runs untimed before every timed batch); the
/// distinctions only matter for the real harness's memory planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh setup for every single iteration.
    PerIteration,
    /// Explicit number of batches.
    NumBatches(u64),
    /// Explicit iterations per batch.
    NumIterations(u64),
}

/// The benchmark context handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from the CLI (cargo bench -- <filter>), so the
    /// usual `cargo bench wal` narrowing works.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes harness flags (e.g. --bench); everything
        // that doesn't look like a flag is a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            sample_size: sample_size_override().unwrap_or(100),
            filter,
        }
    }
}

/// CI smoke runs set `SPF_BENCH_SAMPLES` to a small count so the whole
/// suite executes in seconds; it overrides any programmatic
/// `sample_size` so benches need no smoke-mode awareness of their own.
fn sample_size_override() -> Option<usize> {
    std::env::var("SPF_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, f);
        self
    }

    fn run_one(&self, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark. The
    /// `SPF_BENCH_SAMPLES` environment override (CI smoke mode) wins.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = sample_size_override().unwrap_or(n);
        self
    }

    /// Benchmarks a routine under `group/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&id, self.sample_size, f);
        self
    }

    /// Ends the group (a no-op here; the real harness finalizes reports).
    pub fn finish(self) {}
}

/// Times closures; handed to each `bench_function` callback.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>, // per-iteration time of each sample
}

impl Bencher {
    /// Times `routine` back-to-back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fit in one sample target?
        let calib = Instant::now();
        black_box(routine());
        let once = calib.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Hands full timing control to the routine, as in the real harness:
    /// `routine` receives an iteration count and returns the total time
    /// those iterations took. Used by multi-threaded benchmarks, where
    /// the measured region spans thread spawn/join barriers the harness
    /// cannot see.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        // Calibrate as in `iter`, but trusting the routine's own clock.
        let once = routine(1).max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let total = routine(iters);
            self.samples.push(total / iters as u32);
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by `&mut`.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        self.samples.sort();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{id:<48} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            self.samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, as in the real harness.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, as in the real harness.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(sample_size: usize) -> Criterion {
        Criterion {
            sample_size,
            filter: None,
        }
    }

    #[test]
    fn iter_records_samples_and_reports() {
        let mut c = quiet(5);
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        group.finish();
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = quiet(3);
        c.bench_function("rev", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |mut v| {
                    v.reverse();
                    v
                },
                BatchSize::PerIteration,
            )
        });
    }
}
