//! Offline stand-in for the `tempdir` crate (the 0.3 API subset this
//! workspace uses — see `vendor/README.md` for the ground rules).
//!
//! A [`TempDir`] is a freshly created directory under the system temp
//! directory, removed recursively when the handle is dropped (or kept
//! with [`TempDir::into_path`]). Uniqueness comes from the process id,
//! a nanosecond timestamp, and a process-global counter, with a
//! create-retry loop as the authoritative collision check — no RNG
//! dependency, so this crate stays leaf-level.

#![forbid(unsafe_code)]

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static NEXT_SUFFIX: AtomicU64 = AtomicU64::new(0);

/// A directory in the system temp location, deleted (recursively) on
/// drop.
#[derive(Debug)]
pub struct TempDir {
    /// `None` once the directory has been released by `close`/`into_path`.
    path: Option<PathBuf>,
}

impl TempDir {
    /// Creates a new temporary directory whose name starts with `prefix`.
    pub fn new(prefix: &str) -> io::Result<TempDir> {
        Self::new_in(&std::env::temp_dir(), prefix)
    }

    /// Creates a new temporary directory under `base`.
    pub fn new_in(base: &Path, prefix: &str) -> io::Result<TempDir> {
        let pid = std::process::id();
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        // The counter breaks ties within a process; the retry loop below
        // is what actually guarantees freshness (`create_dir` fails with
        // `AlreadyExists` rather than adopting someone else's directory).
        for _ in 0..1024 {
            let n = NEXT_SUFFIX.fetch_add(1, Ordering::Relaxed);
            let candidate = base.join(format!("{prefix}.{pid}.{nanos}.{n}"));
            match std::fs::create_dir(&candidate) {
                Ok(()) => {
                    return Ok(TempDir {
                        path: Some(candidate),
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "could not find a fresh temporary directory name",
        ))
    }

    /// The directory's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        self.path
            .as_deref()
            .expect("TempDir path accessed after release")
    }

    /// Releases ownership without deleting: the caller keeps the
    /// directory and its contents.
    #[must_use]
    pub fn into_path(mut self) -> PathBuf {
        self.path.take().expect("TempDir already released")
    }

    /// Deletes the directory now, surfacing any error (drop ignores
    /// deletion errors).
    pub fn close(mut self) -> io::Result<()> {
        match self.path.take() {
            Some(p) => std::fs::remove_dir_all(p),
            None => Ok(()),
        }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if let Some(p) = self.path.take() {
            let _ = std::fs::remove_dir_all(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes_on_drop() {
        let dir = TempDir::new("spf-vendor-test").unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        std::fs::write(path.join("f.txt"), b"x").unwrap();
        drop(dir);
        assert!(!path.exists(), "drop must remove the tree recursively");
    }

    #[test]
    fn names_are_unique() {
        let a = TempDir::new("spf-vendor-test").unwrap();
        let b = TempDir::new("spf-vendor-test").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn into_path_keeps_the_directory() {
        let dir = TempDir::new("spf-vendor-test").unwrap();
        let kept = dir.into_path();
        assert!(kept.is_dir());
        std::fs::remove_dir_all(&kept).unwrap();
    }

    #[test]
    fn close_reports_success() {
        let dir = TempDir::new("spf-vendor-test").unwrap();
        let path = dir.path().to_path_buf();
        dir.close().unwrap();
        assert!(!path.exists());
    }
}
