//! Offline stand-in for the subset of [`parking_lot`] used by this
//! workspace: `Mutex`, `RwLock` (borrowed guards), and the `arc_lock`
//! owned guards `ArcRwLockReadGuard` / `ArcRwLockWriteGuard`.
//!
//! The container this repo builds in has no network access to a crates
//! registry, so the real dependency cannot be fetched; this crate mirrors
//! the API (same paths, same call shapes) over `std::sync` primitives.
//! Semantics match where the workspace relies on them: guards release on
//! drop, `Mutex::lock` never returns a poison error, and the `RwLock` is
//! writer-preferring enough that writers cannot starve behind a stream of
//! readers. Performance characteristics of the real crate (adaptive
//! spinning, word-sized locks) are intentionally out of scope.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// A mutual-exclusion lock with `parking_lot`'s poison-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, poisoning is ignored (a panic while holding
    /// the lock does not permanently break it).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// Marker type standing in for `parking_lot::RawRwLock`; only used as a
/// type parameter of the owned guard types, never instantiated.
pub struct RawRwLock {
    _private: (),
}

#[derive(Default)]
struct RwState {
    /// Number of active readers.
    readers: usize,
    /// Whether a writer currently holds the lock.
    writer: bool,
    /// Writers blocked waiting; new readers stand aside while > 0 so
    /// writers cannot starve.
    waiting_writers: usize,
    /// Threads currently asleep on the condvar. Unlock paths only
    /// notify when this is non-zero: `Condvar::notify_all` performs a
    /// futex wake syscall even with nobody waiting, which would tax
    /// every uncontended unlock on hot read paths (the WAL's segment
    /// directory, the buffer pool's page latches).
    sleepers: usize,
}

/// A reader-writer lock with `parking_lot`'s poison-free API, including
/// the `arc_lock` owned guards.
///
/// Built from a `Mutex`/`Condvar` state machine plus an `UnsafeCell`
/// for the data; the two `unsafe` blocks below are the usual guard
/// derefs, sound because the state machine guarantees
/// readers XOR writer.
pub struct RwLock<T: ?Sized> {
    state: StdMutex<RwState>,
    cond: Condvar,
    data: UnsafeCell<T>,
}

// Safety: same bounds as std::sync::RwLock — the state machine hands out
// &T to many threads (needs T: Sync) and &mut T / by-value moves across
// threads (needs T: Send).
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self {
            state: StdMutex::new(RwState::default()),
            cond: Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    fn raw_lock_shared(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while s.writer || s.waiting_writers > 0 {
            s.sleepers += 1;
            s = self.cond.wait(s).unwrap_or_else(|e| e.into_inner());
            s.sleepers -= 1;
        }
        s.readers += 1;
    }

    fn raw_unlock_shared(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.readers -= 1;
        if s.readers == 0 && s.sleepers > 0 {
            self.cond.notify_all();
        }
    }

    fn raw_lock_exclusive(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.waiting_writers += 1;
        while s.writer || s.readers > 0 {
            s.sleepers += 1;
            s = self.cond.wait(s).unwrap_or_else(|e| e.into_inner());
            s.sleepers -= 1;
        }
        s.waiting_writers -= 1;
        s.writer = true;
    }

    fn raw_unlock_exclusive(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.writer = false;
        if s.sleepers > 0 {
            self.cond.notify_all();
        }
    }

    fn raw_try_lock_exclusive(&self) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.writer || s.readers > 0 {
            false
        } else {
            s.writer = true;
            true
        }
    }

    /// Acquires shared (read) access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.raw_lock_shared();
        RwLockReadGuard { lock: self }
    }

    /// Attempts exclusive (write) access without blocking, as in the
    /// real crate.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        if self.raw_try_lock_exclusive() {
            Some(RwLockWriteGuard { lock: self })
        } else {
            None
        }
    }

    /// Acquires exclusive (write) access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.raw_lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        // Safety: &mut self guarantees no guards are outstanding.
        unsafe { &mut *self.data.get() }
    }

    /// Acquires shared access, returning an owned guard that keeps the
    /// `Arc` (and thus the lock) alive for the guard's lifetime.
    /// Call as `RwLock::read_arc(&arc)`, matching the `arc_lock` API.
    pub fn read_arc(this: &Arc<Self>) -> lock_api::ArcRwLockReadGuard<RawRwLock, T> {
        this.raw_lock_shared();
        lock_api::ArcRwLockReadGuard {
            lock: Arc::clone(this),
            _raw: PhantomData,
        }
    }

    /// Acquires exclusive access, returning an owned guard; see
    /// [`RwLock::read_arc`].
    pub fn write_arc(this: &Arc<Self>) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T> {
        this.raw_lock_exclusive();
        lock_api::ArcRwLockWriteGuard {
            lock: Arc::clone(this),
            _raw: PhantomData,
        }
    }

    /// Attempts shared access without blocking, returning an owned
    /// guard on success; the `arc_lock` variant of a `try_read`.
    /// Honors writer preference like [`RwLock::read_arc`]: fails while
    /// a writer holds or waits for the lock.
    pub fn try_read_arc(this: &Arc<Self>) -> Option<lock_api::ArcRwLockReadGuard<RawRwLock, T>> {
        let mut s = this.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.writer || s.waiting_writers > 0 {
            return None;
        }
        s.readers += 1;
        drop(s);
        Some(lock_api::ArcRwLockReadGuard {
            lock: Arc::clone(this),
            _raw: PhantomData,
        })
    }

    /// Attempts exclusive access without blocking, returning an owned
    /// guard on success; the `arc_lock` variant of [`RwLock::try_write`].
    pub fn try_write_arc(this: &Arc<Self>) -> Option<lock_api::ArcRwLockWriteGuard<RawRwLock, T>> {
        if this.raw_try_lock_exclusive() {
            Some(lock_api::ArcRwLockWriteGuard {
                lock: Arc::clone(this),
                _raw: PhantomData,
            })
        } else {
            None
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// RAII shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: shared access is held until drop.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw_unlock_shared();
    }
}

/// RAII exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: exclusive access is held until drop.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: exclusive access is held until drop.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw_unlock_exclusive();
    }
}

/// The subset of the `lock_api` facade the workspace names: the owned
/// (Arc-backed) guard types. The `R` parameter mirrors the raw-lock
/// parameter of the real types and is phantom here.
pub mod lock_api {
    use super::*;

    /// Owned shared guard; keeps its `Arc<RwLock<T>>` alive until drop.
    pub struct ArcRwLockReadGuard<R, T: ?Sized> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<R, T: ?Sized> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // Safety: shared access is held until drop.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            self.lock.raw_unlock_shared();
        }
    }

    /// Owned exclusive guard; keeps its `Arc<RwLock<T>>` alive until drop.
    pub struct ArcRwLockWriteGuard<R, T: ?Sized> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<R, T: ?Sized> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // Safety: exclusive access is held until drop.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            // Safety: exclusive access is held until drop.
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.lock.raw_unlock_exclusive();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *l.write() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 4000);
    }

    #[test]
    fn arc_guards_outlive_the_borrow() {
        let l = Arc::new(RwLock::new(7u32));
        let g = RwLock::read_arc(&l);
        drop(l); // the guard keeps the lock alive
        assert_eq!(*g, 7);
        drop(g);
    }

    #[test]
    fn try_read_arc_backs_off_under_a_writer() {
        let l = Arc::new(RwLock::new(1u32));
        {
            let r1 = RwLock::try_read_arc(&l).expect("uncontended try_read succeeds");
            let r2 = RwLock::try_read_arc(&l).expect("readers share");
            assert_eq!(*r1 + *r2, 2);
        }
        let w = RwLock::write_arc(&l);
        assert!(RwLock::try_read_arc(&l).is_none());
        drop(w);
        assert!(RwLock::try_read_arc(&l).is_some());
    }

    #[test]
    fn try_write_arc_backs_off_and_succeeds() {
        let l = Arc::new(RwLock::new(1u32));
        let r = RwLock::read_arc(&l);
        assert!(RwLock::try_write_arc(&l).is_none());
        drop(r);
        let mut w = RwLock::try_write_arc(&l).expect("uncontended try_write_arc");
        *w = 2;
        assert!(RwLock::try_write_arc(&l).is_none());
        drop(w);
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn arc_write_guard_excludes_readers() {
        let l = Arc::new(RwLock::new(0u32));
        let mut w = RwLock::write_arc(&l);
        *w = 5;
        assert!(l.try_read_would_block());
        drop(w);
        assert_eq!(*l.read(), 5);
    }

    impl<T: ?Sized> RwLock<T> {
        fn try_read_would_block(&self) -> bool {
            let s = self.state.lock().unwrap();
            s.writer || s.waiting_writers > 0
        }
    }
}
