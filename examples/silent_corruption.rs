//! The paper's introduction anecdote, replayed: "a disk started returning
//! corrupted data for some sectors without actually failing the reads, so
//! the controller didn't know anything was wrong" — silent corruption that
//! snowballed into weeks of cluster downtime.
//!
//! We run the same incident against two engines:
//! * a **traditional** engine (no page recovery index, no fence checks,
//!   no single-page recovery), where the stale data is served silently
//!   and later escalates;
//! * the **paper's** engine, where the first read detects the problem and
//!   repairs it inline.
//!
//! ```sh
//! cargo run --example silent_corruption
//! ```

use spf::{CorruptionMode, Database, DatabaseConfig, DbError, FaultSpec};

fn key(i: u32) -> Vec<u8> {
    format!("acct{i:06}").into_bytes()
}

fn run_scenario(config: DatabaseConfig, label: &str) {
    println!("=== {label} ===");
    let db = Database::create(config).expect("create");

    // A banking-ish workload: accounts with balances, updated repeatedly.
    let tx = db.begin();
    for i in 0..2000u32 {
        db.insert(tx, &key(i), b"balance=100").unwrap();
    }
    db.commit(tx).unwrap();
    db.checkpoint().unwrap();

    // The device develops the silent fault of the anecdote: one page's
    // writes are acknowledged but dropped — reads return the old version.
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::StaleVersion),
    );
    println!("armed lost-write fault on {victim}");

    // Business continues: every balance is updated (the victim included),
    // pages get flushed, the cache turns over.
    let tx = db.begin();
    for i in 0..2000u32 {
        db.put(tx, &key(i), b"balance=250").unwrap();
    }
    db.commit(tx).unwrap();
    db.drop_cache();

    // The audit: read every balance.
    let mut stale = 0u32;
    let mut failures = 0u32;
    for i in 0..2000u32 {
        match db.get(&key(i)) {
            Ok(Some(v)) if v == b"balance=250" => {}
            Ok(Some(v)) => {
                stale += 1;
                if stale == 1 {
                    println!(
                        "!! account {i} reads {:?} — old data served as if nothing happened",
                        String::from_utf8_lossy(&v)
                    );
                }
            }
            Ok(None) => stale += 1,
            Err(DbError::Failure { class, reason }) => {
                failures += 1;
                if failures == 1 {
                    println!("!! escalated to {class}: {reason}");
                }
                break;
            }
            Err(e) => {
                println!("!! error: {e}");
                break;
            }
        }
    }

    let stats = db.stats();
    println!(
        "result: {stale} stale answers, {failures} escalations; \
         detections: checksum={} stale-LSN={}; inline recoveries={}",
        stats.pool.detected_checksum, stats.pool.detected_stale_lsn, stats.spf.recoveries
    );
    if stale == 0 && failures == 0 {
        println!("every balance correct — the failure was absorbed.\n");
    } else {
        println!("data loss / downtime — the anecdote reproduced.\n");
    }
}

fn main() {
    run_scenario(
        DatabaseConfig {
            data_pages: 2048,
            ..DatabaseConfig::traditional()
        },
        "traditional engine (no single-page failure support)",
    );
    run_scenario(
        DatabaseConfig {
            data_pages: 2048,
            ..DatabaseConfig::default()
        },
        "engine with single-page detection + recovery (the paper)",
    );
}
