//! Quickstart: create a database, run transactions, survive a crash, and
//! absorb a single-page failure without aborting anything — the paper's
//! headline behaviour (Graefe & Kuno, VLDB 2012, §5.2.3): a corrupted
//! page is detected at read time and repaired inline from its backup
//! plus per-page log chain, so "affected transactions merely wait a
//! short time".
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use spf::{CorruptionMode, Database, DatabaseConfig, FaultSpec};

fn main() {
    // An 8 MiB database (1024 × 8 KiB pages) with the paper's machinery
    // on: continuous fence-key verification, a page recovery index with
    // backup-every-100-updates, and inline single-page recovery.
    let db = Database::create(DatabaseConfig::default()).expect("create database");

    // --- Ordinary transactional use -----------------------------------
    let tx = db.begin();
    for i in 0..1000u32 {
        db.insert(
            tx,
            format!("user{i:06}").as_bytes(),
            format!("profile-{i}").as_bytes(),
        )
        .expect("insert");
    }
    db.commit(tx).expect("commit");
    println!(
        "loaded 1000 records, tree height {}",
        db.tree().height().unwrap()
    );

    // Reads, updates, deletes.
    assert_eq!(
        db.get(b"user000007").unwrap().as_deref(),
        Some(&b"profile-7"[..])
    );
    let tx = db.begin();
    db.put(tx, b"user000007", b"updated-profile").unwrap();
    db.delete(tx, b"user000500").unwrap();
    db.commit(tx).unwrap();

    // Range scan.
    let batch = db.scan(b"user000400", 5).unwrap();
    println!("scan from user000400: {} records", batch.len());

    // --- Crash and restart ---------------------------------------------
    let tx = db.begin();
    db.put(tx, b"user000001", b"never-committed").unwrap();
    // No commit! The system fails:
    db.crash();
    let report = db.restart().expect("restart recovery");
    println!(
        "restart: {} records analyzed, {} pages redone, {} losers rolled back",
        report.analysis_records, report.redo_pages_read, report.losers
    );
    assert_eq!(
        db.get(b"user000007").unwrap().as_deref(),
        Some(&b"updated-profile"[..])
    );
    assert_ne!(
        db.get(b"user000001").unwrap().as_deref(),
        Some(&b"never-committed"[..])
    );

    // --- A single-page failure, absorbed -------------------------------
    db.checkpoint().unwrap();
    let victim = db.any_leaf_page().expect("a leaf to break");
    println!("silently corrupting {victim} on the device…");
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 12 }),
    );
    db.drop_cache();

    // The next read of that page detects the corruption (checksum),
    // restores the page's backup, replays its per-page log chain, and
    // returns the right answer — no error, no aborted transaction. A full
    // scan guarantees the corrupted page is among the pages read.
    let all = db.scan(b"", usize::MAX).unwrap();
    assert_eq!(all.len(), 999); // 1000 loaded − 1 deleted
    assert_eq!(
        db.get(b"user000007").unwrap().as_deref(),
        Some(&b"updated-profile"[..])
    );

    let stats = db.stats();
    println!(
        "single-page failures detected: {}, recovered inline: {} (log records replayed: {})",
        stats.pool.total_detected(),
        stats.spf.recoveries,
        stats.spf.chain_records_fetched,
    );
    println!(
        "tree verifies clean: {}",
        db.verify_tree().unwrap().is_empty()
    );
}
