//! Sweeps the backup-every-N-updates policy of Section 6: "fast
//! single-page recovery can be ensured with a page backup after a number
//! of updates … The number of log records that must be retrieved and
//! applied to the backup page equals the number of updates since the last
//! page backup."
//!
//! Smaller N ⇒ fewer log records to replay at recovery (faster repair)
//! but more backup writes during normal processing (write amplification).
//!
//! ```sh
//! cargo run --release --example backup_policy_tuning
//! ```

use spf::{BackupPolicy, CorruptionMode, Database, DatabaseConfig, FaultSpec, IoCostModel};
use spf_workload::{KeyDistribution, OpMix, Workload};

fn main() {
    println!("backup every N | backups taken | chain records replayed | recovery sim-time | extra backup writes/update");
    println!("---------------+---------------+------------------------+-------------------+---------------------------");

    for n in [10u32, 25, 50, 100, 250, 1000] {
        let db = Database::create(DatabaseConfig {
            data_pages: 2048,
            pool_frames: 64, // small pool: steady eviction traffic
            io_cost: IoCostModel::disk_2012(),
            backup_policy: BackupPolicy {
                every_n_updates: Some(n),
            },
            ..DatabaseConfig::default()
        })
        .expect("create");

        // Skewed updates: hot pages accumulate updates quickly.
        let mut workload = Workload::new(
            7,
            2000,
            KeyDistribution::Zipfian { theta: 0.99 },
            OpMix::update_heavy(),
            64,
        );
        let tx = db.begin();
        for (k, v) in workload.load_phase(2000) {
            db.insert(tx, &k, &v).unwrap();
        }
        db.commit(tx).unwrap();

        let updates = 20_000usize;
        let tx = db.begin();
        for op in workload.take_ops(updates) {
            match op {
                spf_workload::Op::Put { key, value } => {
                    db.put(tx, &key, &value).unwrap();
                }
                spf_workload::Op::Get { key } => {
                    let _ = db.get(&key).unwrap();
                }
                spf_workload::Op::Delete { key } => {
                    let _ = db.delete(tx, &key);
                }
                spf_workload::Op::Scan { start, limit } => {
                    let _ = db.scan(&start, limit).unwrap();
                }
            }
        }
        db.commit(tx).unwrap();
        db.checkpoint().unwrap();

        let before = db.stats();

        // Fail and repair every leaf once, measuring replay effort.
        let leaves = db.leaf_pages();
        for &leaf in leaves.iter().take(20) {
            db.inject_fault(
                leaf,
                FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 6 }),
            );
        }
        db.drop_cache();
        let mut w2 = Workload::new(8, 2000, KeyDistribution::Uniform, OpMix::read_mostly(), 64);
        for _ in 0..4000 {
            let k = Workload::encode_key(w2.next_key_index());
            let _ = db.get(&k).unwrap();
        }

        let after = db.stats();
        let recoveries = after.spf.recoveries - before.spf.recoveries;
        let replayed = after.spf.chain_records_fetched - before.spf.chain_records_fetched;
        let avg_replay = if recoveries > 0 {
            replayed as f64 / recoveries as f64
        } else {
            0.0
        };
        let backup_writes_per_update = after.backups.page_backups_taken as f64 / updates as f64;

        println!(
            "{n:>14} | {:>13} | {avg_replay:>22.1} | {:>17} | {backup_writes_per_update:>26.4}",
            after.backups.page_backups_taken, after.spf.sim_time,
        );
    }

    println!();
    println!(
        "the paper's example N=100 sits near the knee: bounded replay without\n\
         noticeable backup write amplification."
    );
}
