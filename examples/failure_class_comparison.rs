//! Compares recovery cost across the paper's four failure classes under
//! the Section 6 disk model — transaction rollback, system restart,
//! media recovery, and single-page recovery — on the same database.
//!
//! ```sh
//! cargo run --release --example failure_class_comparison
//! ```

use spf::{CorruptionMode, Database, DatabaseConfig, FaultSpec, IoCostModel};

fn key(i: u64) -> Vec<u8> {
    format!("row{i:08}").into_bytes()
}

fn main() {
    let config = DatabaseConfig {
        data_pages: 4096,
        pool_frames: 256,
        io_cost: IoCostModel::disk_2012(),
        ..DatabaseConfig::default()
    };
    let db = Database::create(config).expect("create");

    // Load and back up.
    let tx = db.begin();
    for i in 0..8000u64 {
        db.insert(tx, &key(i), format!("payload-{i}").as_bytes())
            .unwrap();
    }
    db.commit(tx).unwrap();
    db.take_full_backup().unwrap();

    // Ongoing updates so every recovery path has log to replay.
    let tx = db.begin();
    for i in 0..8000u64 {
        db.put(tx, &key(i), format!("payload-v2-{i}").as_bytes())
            .unwrap();
    }
    db.commit(tx).unwrap();
    db.checkpoint().unwrap();

    println!("failure class          | recovery action                  | simulated time");
    println!("-----------------------+----------------------------------+---------------");

    // (1) Transaction failure: roll back a 200-update transaction.
    let t0 = db.clock().now();
    let tx = db.begin();
    for i in 0..200u64 {
        db.put(tx, &key(i), b"doomed").unwrap();
    }
    db.abort(tx).unwrap();
    println!(
        "transaction failure    | rollback of 200 updates          | {}",
        db.clock().now() - t0
    );

    // (2) Single-page failure: corrupt one page, read through it.
    let victim = db.any_leaf_page().unwrap();
    db.inject_fault(
        victim,
        FaultSpec::SilentCorruption(CorruptionMode::BitRot { bits: 8 }),
    );
    db.drop_cache();
    let t0 = db.clock().now();
    let _ = db.get(&key(4000)).unwrap();
    for i in 0..8000u64 {
        // touch everything so the victim is certainly read
        let _ = db.get(&key(i)).unwrap();
    }
    let spf_time = db.single_page_recovery().unwrap().stats().sim_time;
    println!(
        "single-page failure    | detect + per-page chain replay   | {spf_time} (of {} total read time)",
        db.clock().now() - t0
    );

    // (3) System failure: crash and restart. One committed transaction
    // needs redo; one uncommitted transaction whose records became
    // durable (carried out by the later commit's log force) is a loser
    // that undo must roll back.
    let loser = db.begin();
    for i in 0..300u64 {
        db.put(loser, &key(i), b"in-flight-uncommitted").unwrap();
    }
    let winner = db.begin();
    for i in 4000..4500u64 {
        db.put(winner, &key(i), b"committed-after-checkpoint")
            .unwrap();
    }
    db.commit(winner).unwrap(); // forces the log, making the loser durable too
    db.crash();
    let t0 = db.clock().now();
    let report = db.restart().unwrap();
    println!(
        "system failure         | redo {} pages, {} losers undone    | {}",
        report.redo_pages_read,
        report.losers,
        db.clock().now() - t0
    );

    // (4) Media failure: the whole device dies.
    db.fail_device();
    db.pool().discard_all();
    let t0 = db.clock().now();
    let (media, _) = db.media_recover().unwrap();
    println!(
        "media failure          | restore {} pages + replay log    | {}",
        media.pages_restored,
        db.clock().now() - t0
    );

    println!();
    println!(
        "paper, Section 6: transaction rollback < 1 s; system recovery ~ minutes;\n\
         media recovery minutes-to-hours; single-page recovery ≤ 1 s (dozens of I/Os)."
    );
}
